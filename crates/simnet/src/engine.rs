//! The discrete-event simulation engine.
//!
//! Nodes execute their [`Program`]s; the engine interleaves them in
//! simulated time, arbitrating directed-link circuits (edge
//! contention), the NIC send/receive concurrency window, FORCED /
//! UNFORCED delivery semantics and global barriers. Runs are
//! deterministic: events are ordered by `(time, sequence)` and all
//! iteration orders are fixed.
//!
//! # Hot-path internals
//!
//! The engine is the throughput ceiling for every figure, sweep and
//! property suite in this repository, so its inner loop avoids
//! per-event allocation and rescanning:
//!
//! * **Compiled programs** — before the run, each node's [`Op`] list
//!   is compiled once: every `(src, tag)` message key is resolved to a
//!   dense per-node *slot index* (receives are posted at most once per
//!   key, so a slot is a single-use cell holding the posted range, the
//!   delivered flag and any buffered UNFORCED payload), and every
//!   `Send` gets its e-cube path precomputed into an inline
//!   fixed-capacity link array (one hop per cube dimension) plus the receiver-side slot
//!   it will deliver into. The event loop then executes ops by
//!   reference — no `op.clone()`, no hash lookups.
//! * **Zero-copy payloads** — in circuit mode the sender blocks for
//!   the whole transmission, so payload bytes stay *in the sender's
//!   memory* until delivery: one copy, straight into the receiver's
//!   posted range. An inbound delivery that would overwrite the
//!   in-flight range materializes the payload first (copy-on-write),
//!   preserving frozen-at-issue semantics exactly. Store-and-forward
//!   sends (the sender is released after hop 0) and early-arriving
//!   UNFORCED buffers copy through pooled buffers instead.
//! * **Wait-queues** — a transmission that fails to start registers
//!   watchers on the directed links of its segment, on the NIC state
//!   of the affected endpoints, and (for the concurrency-window rule)
//!   on the earliest future time its blocking condition can lapse.
//!   A released link wakes only the transmissions actually blocked on
//!   it. Woken candidates are retried in global issue order, exactly
//!   reproducing the start order, one-shot blocking flags and wait
//!   accounting of the previous full-rescan implementation (see the
//!   determinism-snapshot suite in `mce-core`).
//! * **Calendar-queue scheduling** — pending events (and NIC-lapse
//!   wake-ups) live in [`CalendarQueue`]s instead of binary heaps:
//!   amortized-O(1) push/pop over a ring of time buckets whose width
//!   derives from the machine's transmission granularity, backed by a
//!   sorted overflow tier for far-future events, preserving exact
//!   `(time, seq)` pop order (see the [`crate::sched`] module docs).

use crate::compile::{compile, shared_compiled_for, Compiled, CompiledOp, CompiledProgram};
use crate::config::{SimConfig, SwitchingMode};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::link::{LinkTable, TransmissionId};
use crate::message::{MsgKind, Tag};
use crate::netcond::{
    background_tag, ecube_route_is_dead, lossy_coin, plan_route, BackgroundStream, FaultSet,
    LinkPolicy, NetCondition,
};
use crate::program::Program;
use crate::sched::CalendarQueue;
use crate::shard::{PhaseMode, ShardPlan};
use crate::stats::{JobStats, SimStats};
use crate::time::SimTime;
use crate::trace::{FlowKind, TraceConfig, TraceEvent, TraceSink, WaitCause};
use crate::traffic::{CongAlg, CwndState, FlowCtl};
use mce_hypercube::routing::DirectedLink;
use mce_hypercube::NodeId;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Arc;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Event queue drained before every node finished its program.
    /// Lists each stuck node with a description of what it waits on.
    /// This is how the "fatal" scenarios of Section 7.3 (FORCED
    /// message discarded because its receive was not yet posted)
    /// manifest.
    Deadlock {
        /// `(node, reason)` pairs for every unfinished node.
        stuck: Vec<(NodeId, String)>,
        /// FORCED messages that were discarded during the run.
        forced_drops: u64,
    },
    /// A message was delivered into a posted buffer of a different
    /// size.
    SizeMismatch {
        /// Receiving node.
        node: NodeId,
        /// Offending message tag.
        tag: Tag,
        /// Bytes posted for the receive.
        posted: usize,
        /// Bytes actually sent.
        sent: usize,
    },
    /// A program failed static validation.
    InvalidProgram {
        /// Offending node.
        node: NodeId,
        /// Validator message.
        reason: String,
    },
    /// A program sends to its own node. Self-sends are not modelled
    /// (local data movement is `Permute`/`Compute`); the compile pass
    /// rejects them before any simulated time elapses.
    SelfSend {
        /// Offending node.
        node: NodeId,
        /// Index of the offending op in that node's program.
        op: usize,
    },
    /// [`Simulator::run`] was called a second time. A `Simulator` is
    /// single-shot (its initial memories are moved into the run); use
    /// [`crate::batch::SimArena`] to drive many runs over reused
    /// allocations.
    AlreadyRan,
    /// The [`crate::SimConfig`] failed [`crate::SimConfig::validate`].
    InvalidConfig {
        /// Validator message.
        reason: String,
    },
    /// Under the configured link faults (see [`crate::netcond`]) no
    /// xor-mask decomposition routes `src` to `dst`: every
    /// dimension-correction order crosses a dead cable. Detected for
    /// every transmission of the compiled program — and every
    /// background stream — before any simulated time elapses.
    Unroutable {
        /// Transmitting node.
        src: NodeId,
        /// Unreachable node.
        dst: NodeId,
    },
    /// A flow-controlled source (see [`crate::traffic`]) exhausted its
    /// retry budget: the link policy kept dropping or refusing its
    /// transmission [`crate::traffic::FlowCtl::max_retries`] + 1
    /// times. The typed alternative to an unbounded retransmission
    /// loop — a starved reactive job surfaces here instead of
    /// spinning forever.
    RetriesExhausted {
        /// Index of the starved job in [`crate::SimConfig::jobs`].
        job: u32,
        /// The transmitting context (job · 2^d + node).
        src: NodeId,
        /// The intended receiver context.
        dst: NodeId,
        /// Attempts made (max_retries + 1).
        retries: u32,
    },
    /// The config carried [`crate::SimConfig::declared_sync`] but a
    /// shard window hit a NIC concurrency-window violation — the
    /// workload is not the FORCED-protocol exchange it was declared to
    /// be. Without the declaration the run would have transparently
    /// fallen back to the sequential engine; with it, the driver skips
    /// the input snapshot that fallback needs, so the violation is
    /// surfaced instead of risking silent divergence. Rerun without
    /// `with_declared_sync`.
    SyncDeclarationViolated,
}

impl SimError {
    /// The nodes a [`SimError::Deadlock`] reports as blocked, in node
    /// order; empty for every other error.
    pub fn blocked(&self) -> Vec<NodeId> {
        match self {
            SimError::Deadlock { stuck, .. } => stuck.iter().map(|(n, _)| *n).collect(),
            _ => Vec::new(),
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { stuck, forced_drops } => {
                write!(
                    f,
                    "deadlock: {} node(s) stuck ({} forced drops):",
                    stuck.len(),
                    forced_drops
                )?;
                for (n, r) in stuck.iter().take(8) {
                    write!(f, " [{n}: {r}]")?;
                }
                Ok(())
            }
            SimError::SizeMismatch { node, tag, posted, sent } => write!(
                f,
                "size mismatch at node {node} tag {tag}: posted {posted} bytes, sent {sent}"
            ),
            SimError::InvalidProgram { node, reason } => {
                write!(f, "invalid program at node {node}: {reason}")
            }
            SimError::SelfSend { node, op } => {
                write!(
                    f,
                    "self-send at node {node} op {op}: use Permute/Compute for local data movement"
                )
            }
            SimError::AlreadyRan => {
                write!(f, "Simulator::run is single-shot; build a new Simulator or use SimArena")
            }
            SimError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            SimError::Unroutable { src, dst } => write!(
                f,
                "unroutable: no fault-avoiding xor-mask decomposition routes {src} to {dst}"
            ),
            SimError::RetriesExhausted { job, src, dst, retries } => write!(
                f,
                "retries exhausted: job {job} context {src} gave up sending to {dst} \
                 after {retries} dropped attempts"
            ),
            SimError::SyncDeclarationViolated => write!(
                f,
                "declared_sync violated: a shard window hit a NIC concurrency-window \
                 conflict, so the workload is not pairwise-synchronized; rerun without \
                 with_declared_sync"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of a successful run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Time the last node finished.
    pub finish_time: SimTime,
    /// Per-node finish times.
    pub node_finish: Vec<SimTime>,
    /// Final node memories.
    pub memories: Vec<Vec<u8>>,
    /// Aggregate statistics.
    pub stats: SimStats,
    /// Structured trace events (empty unless tracing was enabled; see
    /// [`crate::trace`]). When the bounded ring overflowed, the oldest
    /// events are missing and
    /// [`SimStats::trace_events_dropped`] counts them.
    pub trace: Vec<TraceEvent>,
}

/// Longest e-cube path the inline link array can hold: one hop per
/// cube dimension, matching `mce_hypercube::MAX_DIMENSION`.
pub(crate) const MAX_HOPS: usize = mce_hypercube::MAX_DIMENSION as usize;

/// Sentinel for "the receiver never posts this key".
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Stack buffer an e-cube route expands into (no heap allocation).
type RouteBuf = [DirectedLink; MAX_HOPS];

/// A route is fully determined by its source and the XOR mask of the
/// endpoints; this expands it hop by hop — correcting the lowest
/// differing bit first, identical to [`ecube_path`] — into `buf` and
/// returns the populated prefix.
#[inline]
fn expand_route(src: NodeId, mask: u32, buf: &mut RouteBuf) -> &[DirectedLink] {
    debug_assert!(mask.count_ones() as usize <= MAX_HOPS);
    let mut cur = src.0;
    let mut diff = mask;
    let mut len = 0usize;
    while diff != 0 {
        let next = cur ^ (diff & diff.wrapping_neg());
        buf[len] = DirectedLink { from: NodeId(cur), to: NodeId(next) };
        cur = next;
        diff &= diff - 1;
        len += 1;
    }
    &buf[..len]
}

#[inline]
fn fresh_route_buf() -> RouteBuf {
    [DirectedLink { from: NodeId(0), to: NodeId(0) }; MAX_HOPS]
}

/// Expand a route given an explicit dimension-correction order (a
/// fault-avoiding alternate decomposition of the xor mask).
#[inline]
fn expand_route_dims<'b>(src: NodeId, dims: &[u8], buf: &'b mut RouteBuf) -> &'b [DirectedLink] {
    debug_assert!(dims.len() <= MAX_HOPS);
    let mut cur = src.0;
    for (i, &dim) in dims.iter().enumerate() {
        let next = cur ^ (1u32 << dim);
        buf[i] = DirectedLink { from: NodeId(cur), to: NodeId(next) };
        cur = next;
    }
    &buf[..dims.len()]
}

/// The route of `(src, mask)` for this run: the fault-avoiding
/// override when the conditioned state holds one, the plain e-cube
/// expansion otherwise.
#[inline]
fn route_for<'b>(
    conditioned: Option<&Conditioned>,
    src: NodeId,
    mask: u32,
    buf: &'b mut RouteBuf,
) -> &'b [DirectedLink] {
    if let Some(cond) = conditioned {
        if let Some(dims) = cond.reroutes.get(&(src.0, mask)) {
            return expand_route_dims(src, dims, buf);
        }
    }
    expand_route(src, mask, buf)
}

/// Per-run state of a conditioned network (faults resolved to route
/// overrides, background-stream schedule). Built before any simulated
/// time elapses; `None` on unconditioned runs.
struct Conditioned {
    /// Fault-avoiding dimension orders for every `(src, mask)` whose
    /// e-cube route crosses a dead cable. Keyed by *physical* source
    /// node: multi-job contexts of one node share routes.
    reroutes: FxHashMap<(u32, u32), Vec<u8>>,
    /// Under [`NetCondition::skip_dead_pairs`]: every `(phys src,
    /// mask)` with *no* fault-avoiding route. Sends to these pairs are
    /// skipped (and counted per job) instead of failing the run;
    /// empty otherwise.
    dead_pairs: FxHashSet<(u32, u32)>,
    /// Background streams (copied out of the config).
    streams: Vec<BackgroundStream>,
    /// Injections left per stream (zeroed for streams whose pair is
    /// dead under `skip_dead_pairs`).
    remaining: Vec<u32>,
}

/// Resolve a [`NetCondition`] against a compiled program set: find a
/// fault-avoiding route for every send and every background stream (or
/// fail with [`SimError::Unroutable`]), and set up the injection
/// schedule.
fn build_conditioned(
    cfg: &SimConfig,
    compiled: &Compiled,
    nc: &NetCondition,
) -> Result<Conditioned, SimError> {
    let mut reroutes: FxHashMap<(u32, u32), Vec<u8>> = Default::default();
    let mut dead_pairs: FxHashSet<(u32, u32)> = Default::default();
    // Multi-job contexts fold onto physical nodes: routes, faults and
    // dead pairs are all per-`(phys src, mask)`.
    let node_mask = cfg.num_nodes() as u32 - 1;
    let skip = nc.skip_dead_pairs;
    let faults = FaultSet::new(cfg.dimension, &nc.faults);
    if faults.any() {
        let mut resolve = |src: NodeId, dst: NodeId| -> Result<(), SimError> {
            let mask = src.0 ^ dst.0;
            if mask == 0
                || reroutes.contains_key(&(src.0, mask))
                || dead_pairs.contains(&(src.0, mask))
                || !ecube_route_is_dead(src, mask, &faults)
            {
                return Ok(());
            }
            match plan_route(src, mask, &faults) {
                Some(dims) => {
                    reroutes.insert((src.0, mask), dims);
                    Ok(())
                }
                None if skip => {
                    dead_pairs.insert((src.0, mask));
                    Ok(())
                }
                None => Err(SimError::Unroutable { src, dst }),
            }
        };
        for (x, program) in compiled.programs.iter().enumerate() {
            for op in program.ops(&compiled.ops) {
                if let CompiledOp::Send { dst, .. } = op {
                    resolve(NodeId(x as u32 & node_mask), NodeId(dst.0 & node_mask))?;
                }
            }
        }
        for stream in &nc.background {
            resolve(stream.src, stream.dst)?;
        }
    }
    // A dead background stream injects nothing instead of erroring.
    let remaining = nc
        .background
        .iter()
        .map(|s| if dead_pairs.contains(&(s.src.0, s.src.0 ^ s.dst.0)) { 0 } else { s.count })
        .collect();
    Ok(Conditioned { reroutes, dead_pairs, streams: nc.background.clone(), remaining })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    /// Waiting on the message bound to this slot of the node.
    Waiting(u32),
    InBarrier,
    Sending(TransmissionId),
    Done,
}

/// Single-use receive cell for one `(src, tag)` key: 12 bytes, packed
/// for the flat all-nodes slot table (d10 runs hold >10^5 slots, so
/// cell size is directly per-run allocation and reset traffic). The
/// rare early-arriving UNFORCED payload lives in a side map keyed by
/// global slot index, not here.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    /// Posted receive range (valid when `POSTED` is set).
    start: u32,
    end: u32,
    flags: u8,
}

/// [`Slot::flags`]: a receive is posted and undelivered.
const SLOT_POSTED: u8 = 1;
/// [`Slot::flags`]: the message was delivered.
const SLOT_DELIVERED: u8 = 1 << 1;
/// [`Slot::flags`]: an UNFORCED payload is buffered in the side map.
const SLOT_BUFFERED: u8 = 1 << 2;

#[derive(Debug, Clone)]
struct NodeState {
    pc: usize,
    status: Status,
    /// Active outgoing transmission interval (id, start, end).
    outgoing: Option<(TransmissionId, SimTime, SimTime)>,
    /// Active incoming transmission intervals (id, start, end).
    incoming: Vec<(TransmissionId, SimTime, SimTime)>,
    finish: SimTime,
}

impl NodeState {
    fn new() -> Self {
        NodeState {
            pc: 0,
            status: Status::Ready,
            outgoing: None,
            incoming: Vec::new(),
            finish: SimTime::ZERO,
        }
    }

    /// Re-arm for a new run, keeping the interval allocation.
    fn reset(&mut self) {
        self.pc = 0;
        self.status = Status::Ready;
        self.outgoing = None;
        self.incoming.clear();
        self.finish = SimTime::ZERO;
    }
}

/// Copy one node's state across the shard-window boundary, reusing
/// the destination's interval allocation (a derived `clone` would
/// allocate a fresh `incoming` per node per window).
fn copy_quiescent(dst: &mut NodeState, src: &NodeState) {
    dst.pc = src.pc;
    dst.status = src.status;
    dst.outgoing = src.outgoing;
    dst.incoming.clear();
    dst.incoming.extend_from_slice(&src.incoming);
    dst.finish = src.finish;
}

/// One in-flight transmission. Field types are packed (u8 hop index,
/// flag bytes) to keep the struct at 72 bytes: the slab holds one per
/// send of the run — >10^5 at d10 — and every event reads or moves
/// entries, so struct size is slab traffic.
#[derive(Debug)]
struct Transmission {
    /// Owned payload bytes; empty when `inplace` carries the range.
    payload: Vec<u8>,
    /// Zero-copy payload: the bytes still live in the *sender's*
    /// memory at this range (circuit mode only — the sender is blocked
    /// for the whole transmission, so only inbound deliveries can
    /// touch its memory, and those materialize the payload first; see
    /// `materialize_overlap`). Saves the issue-side copy entirely —
    /// the single wire-to-memory copy happens at delivery.
    inplace: Option<(u32, u32)>,
    src: NodeId,
    dst: NodeId,
    /// XOR mask of the endpoints; the e-cube route expands from
    /// `(src, mask)` on demand.
    mask: u32,
    dst_slot: u32,
    tag: Tag,
    /// Circuit mode: total end-to-end duration. Store-and-forward
    /// mode: the duration of ONE hop.
    duration_ns: u64,
    requested_at: SimTime,
    /// Queue sequence of the current pending stint; orders retries the
    /// way the old full-rescan ordered its pending list.
    qseq: u64,
    kind: MsgKind,
    /// Next hop to acquire (store-and-forward); always 0 in circuit
    /// mode, where the whole path is acquired at once. `u8` fits
    /// `MAX_HOPS`.
    hop_idx: u8,
    blocked_by_link: bool,
    blocked_by_nic: bool,
    /// Whether the transmission is issued/requeued but not started.
    pending: bool,
    /// Background-traffic injection: occupies links like any circuit
    /// but bypasses NIC state, delivery and algorithm statistics.
    background: bool,
}

impl Transmission {
    /// Payload size in bytes, wherever the bytes live.
    #[inline]
    fn payload_len(&self) -> usize {
        match self.inplace {
            Some((s, e)) => (e - s) as usize,
            None => self.payload.len(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    NodeReady(NodeId),
    TransmissionEnd(TransmissionId),
    /// Fire one injection of background stream `i`.
    Inject(u32),
    /// Re-issue a dropped flow-controlled transmission after its
    /// backoff (see [`crate::traffic`]).
    Retransmit(TransmissionId),
}

/// The simulator. Construct with programs and initial memories, then
/// call [`Simulator::run`].
pub struct Simulator {
    cfg: SimConfig,
    programs: Vec<Program>,
    memories: Vec<Vec<u8>>,
    trace: Option<TraceConfig>,
    ran: bool,
}

impl Simulator {
    /// Create a simulator for `cfg.total_contexts()` node contexts
    /// (equal to `cfg.num_nodes()` on single-tenant configs; a
    /// multi-job config takes one program/memory per job per node,
    /// composed by [`crate::traffic::compose_programs`]).
    ///
    /// # Panics
    ///
    /// Panics if `programs` or `memories` have the wrong length.
    pub fn new(cfg: SimConfig, programs: Vec<Program>, memories: Vec<Vec<u8>>) -> Self {
        assert_eq!(programs.len(), cfg.total_contexts(), "one program per node context required");
        assert_eq!(memories.len(), cfg.total_contexts(), "one memory per node context required");
        Simulator { cfg, programs, memories, trace: None, ran: false }
    }

    /// Enable structured event tracing with the default ring capacity
    /// (see [`crate::trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(TraceConfig::default());
        self
    }

    /// Enable structured event tracing with an explicit config.
    pub fn with_trace_config(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Run to completion, returning timings, statistics and final
    /// memories, or an error describing the failure.
    ///
    /// The initial memories are moved into the run and handed back in
    /// [`SimResult::memories`] without a defensive copy, so a
    /// simulator is single-shot: a second call returns
    /// [`SimError::AlreadyRan`] instead of simulating again. To drive
    /// many runs over reused allocations, use a
    /// [`SimArena`] (or [`crate::batch::SimBatch`]) instead of
    /// rebuilding a `Simulator` per run.
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        if self.ran {
            return Err(SimError::AlreadyRan);
        }
        self.ran = true;
        let mut arena = SimArena::new();
        arena.run_traced(
            &self.cfg,
            &self.programs,
            std::mem::take(&mut self.memories),
            self.trace.as_ref(),
        )
    }
}

/// Cache slots kept for compiled program sets (see
/// [`SimArena::run_shared`]); batches rarely cycle through more
/// distinct shared program sets than this at once.
const COMPILED_CACHE_CAP: usize = 32;

/// One cached compilation: the program set is kept alive so its
/// pointer identity cannot be recycled by a later allocation.
struct CachedCompile {
    programs: Arc<Vec<Program>>,
    mem_lens: Vec<usize>,
    compiled: Arc<Compiled>,
    /// Last-touch stamp from [`SimArena::compile_stamp`]; the entry
    /// with the smallest stamp is evicted when the cache is full.
    stamp: u64,
}

/// Where [`SimArena::compiled_for`] found a compilation — feeds the
/// [`SimStats`] compile telemetry counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CompileSource {
    /// Served by this arena's own lock-free memo.
    LocalHit,
    /// Served by the process-wide shared cache (another arena, or an
    /// earlier epoch of this one, compiled it).
    SharedHit,
    /// Nobody had it: this call ran the compile pipeline.
    Miss,
}

/// Reusable simulation state: drives any number of runs while
/// recycling the allocations that [`Simulator`] would otherwise
/// rebuild per run — payload-buffer pools, the event heap and FIFO,
/// wait-queue tables, per-node state, the link table (per dimension)
/// and permute scratch — plus a compiled-program cache for program
/// sets shared across runs (seed sweeps, config sweeps).
///
/// Arena reuse is invisible in the results: every run starts from
/// fully reset state, so outputs are bit-identical to one-shot
/// [`Simulator`] runs (pinned by the determinism-snapshot suite in
/// `mce-core`). An arena is cheap to create; batch executors keep one
/// per worker thread.
#[derive(Default)]
pub struct SimArena {
    nodes: Vec<NodeState>,
    slots: Vec<Slot>,
    slot_base: Vec<u32>,
    buffered: FxHashMap<u32, Vec<u8>>,
    inplace_out: Vec<Option<TransmissionId>>,
    links: Option<(u32, LinkTable)>,
    transmissions: Vec<Option<Transmission>>,
    tr_slot_ids: Vec<TransmissionId>,
    tr_free: Vec<u32>,
    id_to_slot: Vec<u32>,
    dirty: Vec<(u64, TransmissionId)>,
    link_watch: FxHashMap<DirectedLink, Vec<TransmissionId>>,
    node_watch: Vec<Vec<TransmissionId>>,
    pool: Vec<Vec<u8>>,
    scratch: Vec<u8>,
    sched: Scheduler,
    compiled: Vec<CachedCompile>,
    /// Monotonic touch counter backing the compile memo's LRU
    /// eviction.
    compile_stamp: u64,
    /// Per-shard sub-arenas recycling the window runtimes of the
    /// sharded driver (see [`crate::shard`]); empty until a
    /// `shards > 1` run happens on this arena.
    shard_arenas: Vec<SimArena>,
    /// Pooled full-size memory shell for shard windows (only used
    /// inside `shard_arenas` entries): one empty `Vec<u8>` per node,
    /// with the shard's own memories swapped in and out per window.
    shell: Vec<Vec<u8>>,
    /// Pooled node list of the shard's current window (only used
    /// inside `shard_arenas` entries).
    window_nodes: Vec<u32>,
    /// Pooled flat copy of the run's initial memories, kept by the
    /// sharded driver so a window violation can rerun the original
    /// inputs sequentially without allocating the backup per run.
    pristine: Vec<u8>,
}

impl SimArena {
    /// Fresh arena with no recycled allocations yet.
    pub fn new() -> Self {
        SimArena::default()
    }

    /// Run one simulation, reusing this arena's allocations. Programs
    /// are compiled for this run only; for program sets shared across
    /// several runs prefer [`SimArena::run_shared`], which caches the
    /// compilation.
    pub fn run(
        &mut self,
        cfg: &SimConfig,
        programs: &[Program],
        memories: Vec<Vec<u8>>,
    ) -> Result<SimResult, SimError> {
        self.run_traced(cfg, programs, memories, None)
    }

    /// [`SimArena::run`] with structured event tracing (`None` = off).
    pub fn run_traced(
        &mut self,
        cfg: &SimConfig,
        programs: &[Program],
        memories: Vec<Vec<u8>>,
        trace: Option<&TraceConfig>,
    ) -> Result<SimResult, SimError> {
        check_shape(cfg, programs.len(), memories.len())?;
        let t0 = std::time::Instant::now();
        let compiled = compile(programs, &memories)?;
        let compile_ns = t0.elapsed().as_nanos() as u64;
        let mut out = self.run_compiled(cfg, &compiled, memories, trace)?;
        out.stats.compile_ns = compile_ns;
        out.stats.compile_misses = 1;
        Ok(out)
    }

    /// Run a *shared* program set (identified by its `Arc`): the
    /// compile pass is cached, so seed sweeps and config sweeps over
    /// one program set compile once instead of once per run.
    pub fn run_shared(
        &mut self,
        cfg: &SimConfig,
        programs: &Arc<Vec<Program>>,
        memories: Vec<Vec<u8>>,
    ) -> Result<SimResult, SimError> {
        self.run_shared_traced(cfg, programs, memories, None)
    }

    /// [`SimArena::run_shared`] with structured event tracing (`None`
    /// = off).
    pub fn run_shared_traced(
        &mut self,
        cfg: &SimConfig,
        programs: &Arc<Vec<Program>>,
        memories: Vec<Vec<u8>>,
        trace: Option<&TraceConfig>,
    ) -> Result<SimResult, SimError> {
        check_shape(cfg, programs.len(), memories.len())?;
        let t0 = std::time::Instant::now();
        let (compiled, source) = self.compiled_for(programs, &memories)?;
        let compile_ns = t0.elapsed().as_nanos() as u64;
        let mut out = self.run_compiled(cfg, &compiled, memories, trace)?;
        out.stats.compile_ns = compile_ns;
        match source {
            CompileSource::LocalHit => out.stats.compile_local_hits = 1,
            CompileSource::SharedHit => out.stats.compile_shared_hits = 1,
            CompileSource::Miss => out.stats.compile_misses = 1,
        }
        Ok(out)
    }

    /// Cached compile keyed on program-set identity + memory lengths
    /// (compilation validates ranges against them). Two tiers: this
    /// arena's own lock-free LRU memo in front, the process-wide
    /// shared cache ([`shared_compiled_for`]) behind it — so N worker
    /// arenas sweeping one shared set compile it once per *process*
    /// and then never touch the shared lock again.
    fn compiled_for(
        &mut self,
        programs: &Arc<Vec<Program>>,
        memories: &[Vec<u8>],
    ) -> Result<(Arc<Compiled>, CompileSource), SimError> {
        self.compile_stamp += 1;
        let stamp = self.compile_stamp;
        let hit = self.compiled.iter_mut().find(|c| {
            Arc::ptr_eq(&c.programs, programs)
                && c.mem_lens.len() == memories.len()
                && c.mem_lens.iter().zip(memories).all(|(&l, m)| l == m.len())
        });
        if let Some(c) = hit {
            c.stamp = stamp;
            return Ok((Arc::clone(&c.compiled), CompileSource::LocalHit));
        }
        let (compiled, shared_hit) = shared_compiled_for(programs, memories)?;
        if self.compiled.len() >= COMPILED_CACHE_CAP {
            let oldest = self
                .compiled
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.stamp)
                .map(|(i, _)| i)
                .expect("cap > 0");
            self.compiled.swap_remove(oldest);
        }
        self.compiled.push(CachedCompile {
            programs: Arc::clone(programs),
            mem_lens: memories.iter().map(Vec::len).collect(),
            compiled: Arc::clone(&compiled),
            stamp,
        });
        let source = if shared_hit { CompileSource::SharedHit } else { CompileSource::Miss };
        Ok((compiled, source))
    }

    fn run_compiled(
        &mut self,
        cfg: &SimConfig,
        compiled: &Compiled,
        mut memories: Vec<Vec<u8>>,
        trace: Option<&TraceConfig>,
    ) -> Result<SimResult, SimError> {
        if cfg.num_jobs() > 1 {
            // Jobs share links, never messages: a send whose xor-mask
            // leaves the physical-node bits would alias another job's
            // context. Rejected up front, like self-sends.
            let node_mask = cfg.num_nodes() as u32 - 1;
            for (x, p) in compiled.programs.iter().enumerate() {
                for op in p.ops(&compiled.ops) {
                    if let CompiledOp::Send { dst, .. } = op {
                        if (x as u32 ^ dst.0) > node_mask {
                            return Err(SimError::InvalidProgram {
                                node: NodeId(x as u32),
                                reason: format!(
                                    "cross-job send to context {dst}: jobs share the cube's \
                                     links, not messages"
                                ),
                            });
                        }
                    }
                }
            }
        }
        if crate::shard::eligible(cfg, trace.is_some()) {
            // The sharded attempt consumes the memories; keep a
            // pristine copy so a window violation can fall back to the
            // sequential engine on the original inputs (see
            // [`crate::shard`]). Flat and pooled: one backing buffer
            // reused across runs instead of a fresh clone per node.
            // A `declared_sync` config waives the snapshot — the
            // declaration promises no NIC-window violation, and a
            // broken promise surfaces as a typed error below.
            let mut pristine = std::mem::take(&mut self.pristine);
            pristine.clear();
            if !cfg.declared_sync {
                for m in &memories {
                    pristine.extend_from_slice(m);
                }
            }
            match self.run_sharded(cfg, compiled, memories) {
                ShardedRun::Finished(out) => {
                    self.pristine = pristine;
                    return out;
                }
                ShardedRun::SequentialFallback(_) if cfg.declared_sync => {
                    self.pristine = pristine;
                    return Err(SimError::SyncDeclarationViolated);
                }
                ShardedRun::SequentialFallback(mut mutated) => {
                    // Node memory lengths never change during a run,
                    // so the flat backup restores in place.
                    let mut off = 0;
                    for m in &mut mutated {
                        let len = m.len();
                        m.copy_from_slice(&pristine[off..off + len]);
                        off += len;
                    }
                    self.pristine = pristine;
                    memories = mutated;
                }
            }
        }
        // Resolve network conditions (fault-avoiding routes, injection
        // schedule) before any simulated time elapses; Unroutable
        // surfaces here.
        let conditioned = match &cfg.netcond {
            Some(nc) => Some(build_conditioned(cfg, compiled, nc)?),
            None => None,
        };
        let mut rt = Runtime::from_arena(
            cfg,
            &compiled.programs,
            compiled.total_sends,
            memories,
            trace,
            self,
            None,
        );
        if let Some(nc) = &cfg.netcond {
            rt.links.set_speeds(cfg.dimension, &nc.resolve_speeds(cfg.dimension));
            rt.conditioned = conditioned;
        }
        let out = rt.run(compiled);
        rt.reclaim(self);
        out
    }

    /// Attempt the run on the sharded driver (see [`crate::shard`] for
    /// the execution model and the determinism argument). Returns
    /// [`ShardedRun::SequentialFallback`] when a shard window pushed a
    /// NIC-lapse wake-up — the one situation whose bit-identity to the
    /// sequential engine is not proven — so the caller reruns the
    /// original inputs on the sequential path.
    fn run_sharded(
        &mut self,
        cfg: &SimConfig,
        compiled: &Compiled,
        memories: Vec<Vec<u8>>,
    ) -> ShardedRun {
        let mut rt = Runtime::from_arena(
            cfg,
            &compiled.programs,
            compiled.total_sends,
            memories,
            None,
            self,
            None,
        );
        rt.barrier_hold = true;
        let end = Self::drive_mixed(&mut rt, compiled, &mut self.shard_arenas);
        let out = match end {
            Ok(MixedEnd::Complete) => ShardedRun::Finished(rt.finish(compiled)),
            Ok(MixedEnd::Fallback) => {
                ShardedRun::SequentialFallback(std::mem::take(&mut rt.memories))
            }
            Err(e) => ShardedRun::Finished(Err(e)),
        };
        rt.reclaim(self);
        out
    }

    /// The sharded driver's main loop: run barrier-delimited phases,
    /// choosing per phase between concurrent shard windows and the
    /// globally serialized engine. An associated fn (not a method) so
    /// the master runtime and the shard arenas can be borrowed side by
    /// side.
    fn drive_mixed(
        rt: &mut Runtime<'_>,
        compiled: &Compiled,
        arenas: &mut Vec<SimArena>,
    ) -> Result<MixedEnd, SimError> {
        rt.seed();
        loop {
            rt.drain(compiled)?;
            let Some(mut release) = rt.held_release.take() else {
                // Queue drained with no held barrier: the run
                // completed (or deadlocked) — `finish` sorts it out.
                return Ok(MixedEnd::Complete);
            };
            loop {
                match rt.phase_mode(compiled) {
                    PhaseMode::Global { cross_sends } => {
                        rt.stats.shard_barrier_stalls += 1;
                        rt.stats.shard_cross_events += cross_sends;
                        rt.seed_release(release);
                        break; // outer loop drains this phase globally
                    }
                    PhaseMode::Windowed(plan) => {
                        rt.stats.shard_windows += 1;
                        match Self::run_window(rt, compiled, release, plan, arenas)? {
                            WindowEnd::Violation => return Ok(MixedEnd::Fallback),
                            WindowEnd::Complete => return Ok(MixedEnd::Complete),
                            WindowEnd::Released(next) => release = next,
                        }
                    }
                }
            }
        }
    }

    /// Execute one windowed phase: split the master runtime into
    /// per-shard window runtimes, drain them concurrently, and merge
    /// the results back in shard-index order (every merge step is
    /// deterministic, and the shards' state is disjoint by the window
    /// invariant).
    fn run_window(
        rt: &mut Runtime<'_>,
        compiled: &Compiled,
        release: SimTime,
        plan: ShardPlan,
        arenas: &mut Vec<SimArena>,
    ) -> Result<WindowEnd, SimError> {
        let count = plan.count as usize;
        let d = rt.cfg.dimension;
        let n = rt.nodes.len();
        while arenas.len() < count {
            arenas.push(SimArena::new());
        }
        // The system is quiescent at a barrier boundary: no pending
        // retries, no live circuits, no in-place payloads.
        debug_assert!(rt.dirty.is_empty());
        debug_assert_eq!(rt.links.busy_count(), 0);
        debug_assert!(rt.inplace_out.iter().all(Option::is_none));
        let mut shard_rts: Vec<(Runtime<'_>, Vec<u32>)> = Vec::with_capacity(count);
        for (s, arena) in arenas.iter_mut().enumerate().take(count) {
            let mut list = std::mem::take(&mut arena.window_nodes);
            plan.nodes_of(d, s as u32, &mut list);
            let mut mems = std::mem::take(&mut arena.shell);
            mems.resize(n, Vec::new());
            for &x in &list {
                std::mem::swap(&mut mems[x as usize], &mut rt.memories[x as usize]);
            }
            let mut srt = Runtime::from_arena(
                rt.cfg,
                &compiled.programs,
                compiled.total_sends,
                mems,
                None,
                arena,
                Some(&list),
            );
            // A shard never releases a barrier on its own: its nodes
            // pile up in `barrier_entered` and the queue drains empty,
            // ending the window.
            srt.barrier_target = u64::MAX;
            for &x in &list {
                let xi = x as usize;
                copy_quiescent(&mut srt.nodes[xi], &rt.nodes[xi]);
                let ns = compiled.programs[xi].num_slots as usize;
                let (gb, lb) = (rt.slot_base[xi] as usize, srt.slot_base[xi] as usize);
                srt.slots[lb..lb + ns].copy_from_slice(&rt.slots[gb..gb + ns]);
            }
            // Seed in node order — the projection of the sequential
            // barrier release onto this shard.
            for &x in &list {
                srt.push(release, Event::NodeReady(NodeId(x)));
            }
            shard_rts.push((srt, list));
        }
        let results = rayon::parallel_map(shard_rts, |(mut srt, list)| {
            let res = srt.drain(compiled);
            (srt, list, res)
        });
        let mut entered = 0u64;
        let mut last_entry = SimTime::ZERO;
        let mut violated = false;
        let mut first_err: Option<SimError> = None;
        for (s, (mut srt, list, res)) in results.into_iter().enumerate() {
            for &x in &list {
                let xi = x as usize;
                std::mem::swap(&mut rt.memories[xi], &mut srt.memories[xi]);
                copy_quiescent(&mut rt.nodes[xi], &srt.nodes[xi]);
                let ns = compiled.programs[xi].num_slots as usize;
                let (gb, lb) = (rt.slot_base[xi] as usize, srt.slot_base[xi] as usize);
                rt.slots[gb..gb + ns].copy_from_slice(&srt.slots[lb..lb + ns]);
            }
            // Cross-boundary UNFORCED buffering: carry early arrivals
            // into the master map, translating the shard's packed slot
            // indices back to global ones (shards own disjoint slots).
            // The next phase then runs globally.
            for (k, v) in srt.buffered.drain() {
                let owner = list
                    .iter()
                    .map(|&x| x as usize)
                    .find(|&xi| {
                        let lb = srt.slot_base[xi];
                        let ns = compiled.programs[xi].num_slots;
                        (lb..lb + ns).contains(&k)
                    })
                    .expect("buffered key outside shard slots");
                let gk = rt.slot_base[owner] + (k - srt.slot_base[owner]);
                rt.buffered.insert(gk, v);
            }
            rt.stats.absorb(&srt.stats);
            entered += srt.barrier_entered[0];
            if srt.last_barrier_entry > last_entry {
                last_entry = srt.last_barrier_entry;
            }
            violated |= srt.lapse_pushes > 0;
            let peak = srt.sched.events.telemetry().peak_pending;
            if peak > rt.stats.shard_peak_pending {
                rt.stats.shard_peak_pending = peak;
            }
            if first_err.is_none() {
                if let Err(e) = res {
                    first_err = Some(e);
                }
            }
            let shell = std::mem::take(&mut srt.memories);
            srt.reclaim_window(&mut arenas[s]);
            arenas[s].shell = shell;
            arenas[s].window_nodes = list;
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if violated {
            return Ok(WindowEnd::Violation);
        }
        if entered == n as u64 {
            rt.stats.barriers += 1;
            return Ok(WindowEnd::Released(last_entry.plus_ns(rt.cfg.barrier_ns())));
        }
        // Not every node reached a barrier: either the whole run is
        // done, or it deadlocked — `finish` tells them apart.
        Ok(WindowEnd::Complete)
    }
}

/// Outcome of [`SimArena::run_sharded`].
// One value exists per run and it is consumed immediately, so the
// variant size skew costs nothing; boxing would only add a hop.
#[allow(clippy::large_enum_variant)]
enum ShardedRun {
    Finished(Result<SimResult, SimError>),
    /// A window pushed a NIC-lapse wake-up: rerun sequentially. The
    /// mutated memory vectors ride along so the caller can restore
    /// their contents from the pristine backup in place.
    SequentialFallback(Vec<Vec<u8>>),
}

/// Outcome of the mixed driver's main loop.
enum MixedEnd {
    Complete,
    Fallback,
}

/// Outcome of one shard window.
enum WindowEnd {
    /// All nodes entered their next barrier; it releases at the time
    /// carried here.
    Released(SimTime),
    /// The run ended inside the window (every node done, or stuck).
    Complete,
    /// A shard pushed a NIC-lapse wake-up: discard the sharded
    /// attempt.
    Violation,
}

/// Shared config/shape validation for every arena-driven run.
fn check_shape(cfg: &SimConfig, num_programs: usize, num_memories: usize) -> Result<(), SimError> {
    cfg.validate().map_err(|reason| SimError::InvalidConfig { reason })?;
    let n = cfg.total_contexts();
    if num_programs != n || num_memories != n {
        return Err(SimError::InvalidConfig {
            reason: format!(
                "cube of {} nodes x {} job(s) needs one program and one memory per node \
                 context ({n} total; got {num_programs} programs, {num_memories} memories)",
                cfg.num_nodes(),
                cfg.num_jobs(),
            ),
        });
    }
    Ok(())
}

struct Runtime<'c> {
    cfg: &'c SimConfig,
    nodes: Vec<NodeState>,
    /// Flat receive-slot table over all nodes (one allocation; node
    /// `x`'s cells start at `slot_base[x]`).
    slots: Vec<Slot>,
    slot_base: Vec<u32>,
    /// Early-arriving UNFORCED payloads, keyed by global slot index.
    buffered: FxHashMap<u32, Vec<u8>>,
    /// Per node, the outstanding transmission whose payload is still
    /// in-place in that node's memory (at most one: a sender blocks on
    /// its send). Checked by every delivery into the node.
    inplace_out: Vec<Option<TransmissionId>>,
    memories: Vec<Vec<u8>>,
    links: LinkTable,
    /// Slab of *live* transmissions: completed entries are taken and
    /// their slots recycled through `tr_free`, so the slab stays at
    /// peak-concurrency size (cache-hot) instead of growing one entry
    /// per send of the run. Transmission *ids* stay the monotonic
    /// per-run counter — every ordering key and the jitter stream
    /// derive from them — and `id_to_slot` maps them to slab slots;
    /// `tr_slot_ids[slot]` names the id currently occupying a slot, so
    /// a stale id (a watcher registration outliving its transmission)
    /// is detected instead of aliasing the slot's new tenant.
    transmissions: Vec<Option<Transmission>>,
    tr_slot_ids: Vec<TransmissionId>,
    tr_free: Vec<u32>,
    id_to_slot: Vec<u32>,
    /// Pending transmissions due a start attempt, kept sorted by
    /// queue sequence (global issue order). Almost always one entry
    /// deep, so a sorted vector beats a tree.
    dirty: Vec<(u64, TransmissionId)>,
    /// Transmissions watching a directed link for acquires/releases.
    link_watch: FxHashMap<DirectedLink, Vec<TransmissionId>>,
    /// Live registrations across all link watch lists; zero lets the
    /// wake path skip its hash lookups entirely on contention-free
    /// runs.
    link_watch_entries: usize,
    /// Transmissions watching a node's NIC intervals.
    node_watch: Vec<Vec<TransmissionId>>,
    /// Reusable payload buffers.
    pool: Vec<Vec<u8>>,
    /// Pool retention cap: scaled to the cube so a full wave of
    /// concurrent transmissions recycles without reallocating.
    pool_cap: usize,
    /// Reusable scratch for block permutations.
    scratch: Vec<u8>,
    /// The event scheduler (calendar queues + same-time FIFO); one
    /// struct shared with [`SimArena`] so reclaim cannot drift from
    /// the run state.
    sched: Scheduler,
    /// Conditioned-network state (`None` on unconditioned runs).
    conditioned: Option<Conditioned>,
    /// Machine timing parameters pre-converted to integer nanoseconds
    /// once per run: the unconditioned pricing path runs per
    /// transmission and must not pay four float-to-int rounds each
    /// time. Identical values to the `SimConfig::*_ns` helpers.
    ns_lambda: u64,
    ns_lambda0: u64,
    ns_tau: u64,
    ns_delta: u64,
    /// The simulated time currently being drained.
    cur_t: SimTime,
    next_tid: TransmissionId,
    next_qseq: u64,
    /// Physical-node mask: context `c` of a multi-job run acts for
    /// node `c & node_mask` (always `num_nodes - 1`; on single-tenant
    /// runs contexts *are* nodes and the mask is the identity).
    node_mask: u32,
    /// Tenant jobs sharing the cube (1 on single-tenant runs).
    num_jobs: usize,
    /// Per-job barrier-entry counters (barriers are job-local: jobs
    /// never synchronize with each other).
    barrier_entered: Vec<u64>,
    /// Barrier-entry count that releases a job's barrier: the per-job
    /// node count on sequential runs, `u64::MAX` inside a shard window
    /// (a shard never releases a barrier on its own — the sharded
    /// driver coordinates the release across shards; see
    /// [`crate::shard`]).
    barrier_target: u64,
    /// The run's link policy (copied out of the netcond); `None` =
    /// reliable links, and the flow-control fields below stay empty.
    link_policy: Option<LinkPolicy>,
    /// Per-job flow control; empty unless a link policy *and* at least
    /// one flow-controlled job are configured (the reactive machinery
    /// costs the legacy path nothing).
    flow: Vec<Option<FlowCtl>>,
    /// Per-context congestion-window state (parallel to `nodes`;
    /// empty when `flow` is).
    flow_cwnd: Vec<CwndState>,
    /// Per-context consecutive-drop counters (empty when `flow` is).
    flow_retries: Vec<u32>,
    /// First typed error raised outside an event handler's return path
    /// (a retry budget exhausted inside the pending scan); checked
    /// after every drained event.
    fatal: Option<SimError>,
    /// When set, a completed barrier records its release time in
    /// `held_release` instead of waking the nodes: the sharded driver
    /// runs one barrier-delimited phase at a time and decides each
    /// phase's execution mode at the boundary.
    barrier_hold: bool,
    /// Release time of the barrier that completed under
    /// `barrier_hold` (last entry time + barrier cost).
    held_release: Option<SimTime>,
    /// Time of the most recent barrier entry; the sharded driver
    /// takes the max across shards to time the release.
    last_barrier_entry: SimTime,
    /// NIC-lapse wake-ups pushed by this runtime. A shard window that
    /// pushed any is not provably bit-identical to the sequential
    /// engine (see [`crate::shard`]), so the driver discards the whole
    /// sharded attempt and reruns the inputs sequentially.
    lapse_pushes: u64,
    stats: SimStats,
    /// Structured trace sink; `None` (the default) keeps the traced
    /// paths down to one pointer test per emission site, so a
    /// trace-off run is bit-identical to a build without the sink.
    sink: Option<Box<TraceSink>>,
}

/// Orderable event payload for the heap (derives Ord).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKey {
    NodeReady(u32),
    TransmissionEnd(u64),
    Inject(u32),
    Retransmit(u64),
}

impl From<Event> for EventKey {
    fn from(e: Event) -> EventKey {
        match e {
            Event::NodeReady(n) => EventKey::NodeReady(n.0),
            Event::TransmissionEnd(t) => EventKey::TransmissionEnd(t),
            Event::Inject(i) => EventKey::Inject(i),
            Event::Retransmit(t) => EventKey::Retransmit(t),
        }
    }
}

/// The engine's event scheduler: the main [`CalendarQueue`] over
/// `(time, seq, EventKey)`, the same-time FIFO (events scheduled for
/// the instant currently being drained skip the queue entirely — they
/// dominate the event mix), and the NIC-lapse calendar queue of
/// `(time_ns, qseq, tid)` wake-ups for concurrency-window conditions
/// that expire by the passage of time alone.
///
/// Exactly one of these exists per run *and* per arena: `Runtime`
/// takes it from the [`SimArena`] and hands it back on reclaim, so the
/// run state and the recycled allocations are one struct and cannot
/// drift apart.
#[derive(Default)]
struct Scheduler {
    events: CalendarQueue<EventKey>,
    fifo: VecDeque<EventKey>,
    lapse: CalendarQueue<TransmissionId>,
    /// Sequence stamp of the last queued event; orders same-time
    /// entries by push order.
    seq: u64,
}

impl Scheduler {
    /// Re-arm for a run: `width` is the calendar bucket width in
    /// `SimTime` ticks, `bucket_hint` the expected concurrency (ring
    /// size). Keeps all allocations, zeroes telemetry.
    fn reset(&mut self, width: u64, bucket_hint: usize) {
        self.events.reset(width, bucket_hint);
        // The lapse tier sees only blocked-NIC wake-ups — orders of
        // magnitude fewer entries — so a small ring suffices.
        self.lapse.reset(width, 64);
        self.fifo.clear();
        self.seq = 0;
    }

    /// Drop all entries (post-run or post-error), keeping allocations.
    fn clear(&mut self) {
        self.events.clear();
        self.lapse.clear();
        self.fifo.clear();
        self.seq = 0;
    }

    /// Schedule `ev` at `at`, given the instant currently draining.
    #[inline]
    fn push(&mut self, at: SimTime, cur_t: SimTime, ev: EventKey) {
        if at == cur_t {
            // Same-time events keep sequence order by construction:
            // everything already queued for this instant was pushed
            // earlier (smaller sequence), everything pushed now
            // appends in order.
            self.fifo.push_back(ev);
        } else {
            self.seq += 1;
            self.events.push(at.as_ns(), self.seq, ev);
        }
    }

    /// Next event in exact `(time, seq)` order: queued entries for the
    /// current instant precede FIFO entries (they carry smaller
    /// sequence numbers), the FIFO drains next, and only then does
    /// time advance to the queue's next instant.
    #[inline]
    fn pop_next(&mut self, cur_t: &mut SimTime) -> Option<(SimTime, EventKey)> {
        if let Some((t, _, key)) = self.events.pop_if_time(cur_t.as_ns()) {
            return Some((SimTime(t), key));
        }
        if let Some(key) = self.fifo.pop_front() {
            return Some((*cur_t, key));
        }
        let (t, _, key) = self.events.pop()?;
        *cur_t = SimTime(t);
        Some((SimTime(t), key))
    }
}

impl<'c> Runtime<'c> {
    /// Assemble a runtime from the arena's recycled allocations; the
    /// arena is drained for the duration of the run and refilled by
    /// [`Runtime::reclaim`]. All recycled containers were left empty
    /// (or, for nodes/links, are reset here), so a run observes
    /// exactly the state a freshly-allocated runtime would.
    fn from_arena(
        cfg: &'c SimConfig,
        programs: &[CompiledProgram],
        total_sends: usize,
        memories: Vec<Vec<u8>>,
        trace: Option<&TraceConfig>,
        arena: &mut SimArena,
        shard: Option<&[u32]>,
    ) -> Self {
        let n = programs.len();
        let mut nodes = std::mem::take(&mut arena.nodes);
        if shard.is_some() {
            // Shard-window runtime: the driver overwrites the shard's
            // own nodes from the master right after construction and
            // never touches foreign entries, so stale state from the
            // previous window is fine — skip the per-node reset.
            nodes.resize_with(n, NodeState::new);
        } else {
            for i in 0..n {
                if i < nodes.len() {
                    nodes[i].reset();
                } else {
                    nodes.push(NodeState::new());
                }
            }
            nodes.truncate(n);
        }
        let mut slot_base = std::mem::take(&mut arena.slot_base);
        let mut slots = std::mem::take(&mut arena.slots);
        match shard {
            Some(list) => {
                // Packed shard-local slot table: only the shard's own
                // nodes get (local) base offsets, so the hot slot
                // state is contiguous and sized to the subcube — for
                // interleaved-coset shards as much as contiguous ones.
                // Stale foreign entries in `slot_base` are never read.
                slot_base.resize(n, 0);
                let mut local = 0u32;
                for &x in list {
                    slot_base[x as usize] = local;
                    local += programs[x as usize].num_slots;
                }
                // The split pass overwrites every cell from the
                // master, so only right-size — don't zero. Across
                // windows of equal size this keeps the allocation
                // untouched.
                if slots.len() != local as usize {
                    slots.clear();
                    slots.resize(local as usize, Slot::default());
                }
            }
            None => {
                slot_base.clear();
                let mut total_slots = 0u32;
                for p in programs {
                    slot_base.push(total_slots);
                    total_slots += p.num_slots;
                }
                slots.clear();
                slots.resize(total_slots as usize, Slot::default());
            }
        }
        let mut inplace_out = std::mem::take(&mut arena.inplace_out);
        inplace_out.clear();
        inplace_out.resize(n, None);
        // Full-cube link table, recycled through the arena (shard
        // runtimes too: a shard may sit on any coset of the cube, and
        // its nodes touch only their own rows, so the uniform layout
        // costs nothing and the allocation survives across windows).
        let links = match arena.links.take() {
            Some((dim, table)) if dim == cfg.dimension => table,
            _ => LinkTable::for_cube(cfg.dimension),
        };
        let mut id_to_slot = std::mem::take(&mut arena.id_to_slot);
        id_to_slot.reserve(total_sends);
        // NIC wait-watchers live at *physical* nodes: a multi-job
        // context blocked on a node's NIC state must wake when any
        // co-tenant context of that node changes it.
        let phys_n = cfg.num_nodes();
        let num_jobs = cfg.num_jobs();
        let mut node_watch = std::mem::take(&mut arena.node_watch);
        node_watch.resize_with(phys_n, Vec::new);
        let link_policy = cfg.netcond.as_ref().and_then(|nc| nc.link_policy);
        let (flow, flow_cwnd, flow_retries) =
            if link_policy.is_some() && cfg.jobs.iter().any(|j| j.flow.is_some()) {
                let flow: Vec<Option<FlowCtl>> = cfg.jobs.iter().map(|j| j.flow).collect();
                let mut cwnd = Vec::with_capacity(n);
                for j in &cfg.jobs {
                    let state = j.flow.unwrap_or_default().cwnd.instantiate();
                    for _ in 0..phys_n {
                        cwnd.push(state);
                    }
                }
                (flow, cwnd, vec![0u32; n])
            } else {
                (Vec::new(), Vec::new(), Vec::new())
            };
        let mut stats = SimStats::default();
        if shard.is_none() && !cfg.jobs.is_empty() {
            stats.jobs = cfg
                .jobs
                .iter()
                .enumerate()
                .map(|(j, spec)| JobStats {
                    job: j as u32,
                    start_ns: spec.start_ns,
                    ..JobStats::default()
                })
                .collect();
        }
        let mut sched = std::mem::take(&mut arena.sched);
        // Calendar sizing: bucket width targets one distinct event
        // time per bucket, ring size the cube's concurrency (up to
        // `n` transmissions complete per granularity interval, plus
        // headroom for the in-flight spread). Shard windows scale the
        // ring to the subcube they own.
        let concurrency = shard.map_or(n, <[u32]>::len);
        sched.reset(cfg.sched_bucket_width_ns(), (4 * concurrency).clamp(64, 1 << 14));
        Runtime {
            cfg,
            nodes,
            slots,
            slot_base,
            buffered: std::mem::take(&mut arena.buffered),
            inplace_out,
            memories,
            links,
            transmissions: std::mem::take(&mut arena.transmissions),
            tr_slot_ids: std::mem::take(&mut arena.tr_slot_ids),
            tr_free: std::mem::take(&mut arena.tr_free),
            id_to_slot,
            dirty: std::mem::take(&mut arena.dirty),
            link_watch: std::mem::take(&mut arena.link_watch),
            link_watch_entries: 0,
            node_watch,
            pool: std::mem::take(&mut arena.pool),
            pool_cap: (2 * n).max(64),
            scratch: std::mem::take(&mut arena.scratch),
            sched,
            conditioned: None,
            ns_lambda: crate::time::us_to_ns(cfg.params.lambda),
            ns_lambda0: crate::time::us_to_ns(cfg.params.lambda_zero),
            ns_tau: crate::time::us_to_ns(cfg.params.tau),
            ns_delta: crate::time::us_to_ns(cfg.params.delta),
            cur_t: SimTime(u64::MAX),
            next_tid: 1,
            next_qseq: 0,
            node_mask: phys_n as u32 - 1,
            num_jobs,
            barrier_entered: vec![0; num_jobs],
            barrier_target: phys_n as u64,
            barrier_hold: false,
            held_release: None,
            last_barrier_entry: SimTime::ZERO,
            lapse_pushes: 0,
            link_policy,
            flow,
            flow_cwnd,
            flow_retries,
            fatal: None,
            stats,
            sink: trace.map(|tc| Box::new(TraceSink::new(tc, n))),
        }
    }

    /// The physical cube node a context acts for.
    #[inline]
    fn phys(&self, x: NodeId) -> NodeId {
        NodeId(x.0 & self.node_mask)
    }

    /// The tenant job a context belongs to.
    #[inline]
    fn job_of(&self, x: NodeId) -> usize {
        (x.0 >> self.cfg.dimension) as usize
    }

    /// This context's flow control, when the run's reactive machinery
    /// is active and the context's job opted in.
    #[inline]
    fn flow_of(&self, x: NodeId) -> Option<&FlowCtl> {
        self.flow.get(self.job_of(x)).and_then(Option::as_ref)
    }

    /// Return every recycled allocation to the arena, cleared of
    /// run-specific contents (stale wait-queue registrations, lapse
    /// wake-ups and unfinished transmissions from error runs must not
    /// leak into the next run). Payload pool and scratch survive
    /// as-is: their contents are overwritten before use.
    fn reclaim(self, arena: &mut SimArena) {
        self.reclaim_impl(arena, false)
    }

    /// [`Runtime::reclaim`] for shard-window runtimes: additionally
    /// keeps the slot table and base offsets *as-is*, so the next
    /// window of the same shape skips re-zeroing them (the split pass
    /// overwrites every cell from the master anyway).
    fn reclaim_window(self, arena: &mut SimArena) {
        self.reclaim_impl(arena, true)
    }

    fn reclaim_impl(self, arena: &mut SimArena, keep_slot_tables: bool) {
        let Runtime {
            nodes,
            mut slots,
            mut slot_base,
            mut buffered,
            mut inplace_out,
            mut links,
            mut transmissions,
            mut tr_slot_ids,
            mut tr_free,
            mut id_to_slot,
            mut dirty,
            mut link_watch,
            mut node_watch,
            pool,
            scratch,
            mut sched,
            cfg,
            ..
        } = self;
        if !keep_slot_tables {
            slots.clear();
            slot_base.clear();
        }
        buffered.clear();
        inplace_out.clear();
        transmissions.clear();
        tr_slot_ids.clear();
        tr_free.clear();
        id_to_slot.clear();
        dirty.clear();
        for watchers in link_watch.values_mut() {
            watchers.clear();
        }
        for watchers in node_watch.iter_mut() {
            watchers.clear();
        }
        sched.clear();
        if links.busy_count() > 0 {
            links.clear();
        }
        if links.has_speeds() {
            links.clear_speeds();
        }
        arena.nodes = nodes;
        arena.slots = slots;
        arena.slot_base = slot_base;
        arena.buffered = buffered;
        arena.inplace_out = inplace_out;
        arena.links = Some((cfg.dimension, links));
        arena.transmissions = transmissions;
        arena.tr_slot_ids = tr_slot_ids;
        arena.tr_free = tr_free;
        arena.id_to_slot = id_to_slot;
        arena.dirty = dirty;
        arena.link_watch = link_watch;
        arena.node_watch = node_watch;
        arena.pool = pool;
        arena.scratch = scratch;
        arena.sched = sched;
    }

    fn push(&mut self, at: SimTime, ev: Event) {
        self.sched.push(at, self.cur_t, ev.into());
    }

    #[inline]
    fn tr(&self, id: TransmissionId) -> &Transmission {
        let slot = self.id_to_slot[(id - 1) as usize] as usize;
        debug_assert_eq!(self.tr_slot_ids[slot], id, "stale transmission id");
        self.transmissions[slot].as_ref().expect("unknown transmission")
    }

    #[inline]
    fn tr_mut(&mut self, id: TransmissionId) -> &mut Transmission {
        let slot = self.id_to_slot[(id - 1) as usize] as usize;
        debug_assert_eq!(self.tr_slot_ids[slot], id, "stale transmission id");
        self.transmissions[slot].as_mut().expect("unknown transmission")
    }

    /// The transmission of `id` when it is still live (a watcher
    /// registration can outlive its transmission; its slot may since
    /// have been recycled for a different id, or emptied).
    #[inline]
    fn tr_live(&self, id: TransmissionId) -> Option<&Transmission> {
        let slot = *self.id_to_slot.get((id - 1) as usize)? as usize;
        if self.tr_slot_ids[slot] != id {
            return None;
        }
        self.transmissions[slot].as_ref()
    }

    fn take_tr(&mut self, id: TransmissionId) -> Transmission {
        let slot = self.id_to_slot[(id - 1) as usize] as usize;
        debug_assert_eq!(self.tr_slot_ids[slot], id, "stale transmission id");
        self.tr_slot_ids[slot] = 0;
        self.tr_free.push(slot as u32);
        self.transmissions[slot].take().expect("unknown transmission")
    }

    /// Check a buffer out of the pool and fill it with a copy of
    /// `memories[node][range]` — the single pool-checkout-and-copy
    /// behind every path that materializes payload bytes out of a
    /// node's memory.
    fn copy_out_of_memory(&mut self, node: NodeId, range: Range<usize>) -> Vec<u8> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(&self.memories[node.index()][range]);
        buf
    }

    /// Return a payload buffer to the pool.
    fn recycle(&mut self, buf: Vec<u8>) {
        // Payloads within one run are near-uniform in size, so pooled
        // buffers are almost always reusable as-is; the cap tracks the
        // cube's concurrency (up to ~2·n buffers live at once when a
        // step's wave of sends overlaps the next).
        if buf.capacity() > 0 && self.pool.len() < self.pool_cap {
            self.pool.push(buf);
        }
    }

    fn run(&mut self, compiled: &Compiled) -> Result<SimResult, SimError> {
        self.seed();
        self.drain(compiled)?;
        self.finish(compiled)
    }

    /// Queue the run's initial events: every node context ready at its
    /// job's start offset (time zero on single-tenant runs), plus the
    /// first injection of each live background stream.
    fn seed(&mut self) {
        let staggered = !self.cfg.jobs.is_empty();
        let per_job = (self.node_mask + 1) as usize;
        for i in 0..self.nodes.len() {
            let at = if staggered {
                SimTime(self.cfg.jobs[i / per_job].start_ns)
            } else {
                SimTime::ZERO
            };
            self.push(at, Event::NodeReady(NodeId(i as u32)));
        }
        if let Some(cond) = &self.conditioned {
            let first: Vec<(u32, u64)> = cond
                .streams
                .iter()
                .enumerate()
                .filter(|&(i, _)| cond.remaining[i] > 0)
                .map(|(i, s)| (i as u32, s.start_ns))
                .collect();
            for (i, start_ns) in first {
                self.push(SimTime(start_ns), Event::Inject(i));
            }
        }
    }

    /// Dispatch events in `(time, seq)` order until the queue is
    /// empty — which means the run completed, deadlocked, or (under
    /// `barrier_hold`) reached a phase boundary.
    fn drain(&mut self, compiled: &Compiled) -> Result<(), SimError> {
        while let Some((t, key)) = self.sched.pop_next(&mut self.cur_t) {
            match key {
                EventKey::NodeReady(n) => self.step_node(NodeId(n), t, compiled)?,
                EventKey::TransmissionEnd(id) => self.finish_transmission(id, t)?,
                EventKey::Inject(i) => self.inject_background(i as usize, t),
                EventKey::Retransmit(id) => self.fire_retransmit(id, t),
            }
            // Errors raised inside the pending scan (a flow-controlled
            // source out of retries) surface between events.
            if let Some(e) = self.fatal.take() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Post-drain wrap-up: deadlock detection, scheduler telemetry,
    /// result assembly.
    fn finish(&mut self, compiled: &Compiled) -> Result<SimResult, SimError> {
        // All events drained: every node must be Done.
        let stuck: Vec<(NodeId, String)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.status != Status::Done)
            .map(|(i, s)| {
                let reason = match s.status {
                    Status::Waiting(_) => match compiled.programs[i].ops(&compiled.ops).get(s.pc) {
                        Some(CompiledOp::WaitRecv { src, tag, .. }) => {
                            format!("waiting for ({src}, {tag})")
                        }
                        _ => "waiting".to_string(),
                    },
                    Status::InBarrier => "in barrier".to_string(),
                    Status::Sending(id) => format!("sending #{id}"),
                    other => format!("{other:?}"),
                };
                (NodeId(i as u32), reason)
            })
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock { stuck, forced_drops: self.stats.forced_drops });
        }
        // Scheduler telemetry: peak pending of the main event queue,
        // resize/spill counts summed over both calendar tiers.
        let (ev, lapse) = (self.sched.events.telemetry(), self.sched.lapse.telemetry());
        self.stats.sched_peak_pending = ev.peak_pending;
        self.stats.sched_bucket_resizes = ev.bucket_resizes + lapse.bucket_resizes;
        self.stats.sched_overflow_spills = ev.overflow_spills + lapse.overflow_spills;
        let finish_time = self.nodes.iter().map(|s| s.finish).max().unwrap_or(SimTime::ZERO);
        // Per-job finish: the job's last context to complete.
        if !self.stats.jobs.is_empty() {
            let per_job = (self.node_mask + 1) as usize;
            for (j, js) in self.stats.jobs.iter_mut().enumerate() {
                js.finish_ns = self.nodes[j * per_job..(j + 1) * per_job]
                    .iter()
                    .map(|s| s.finish.as_ns())
                    .max()
                    .unwrap_or(0);
            }
        }
        let trace = match self.sink.as_mut() {
            Some(sink) => {
                self.stats.trace_events_dropped = sink.ring.dropped();
                sink.ring.drain()
            }
            None => Vec::new(),
        };
        Ok(SimResult {
            finish_time,
            node_finish: self.nodes.iter().map(|s| s.finish).collect(),
            memories: std::mem::take(&mut self.memories),
            stats: std::mem::take(&mut self.stats),
            trace,
        })
    }

    /// Push the barrier-release wakes for every node — what the
    /// sequential barrier handler does when it completes, deferred to
    /// the sharded driver under `barrier_hold`.
    fn seed_release(&mut self, release: SimTime) {
        for i in 0..self.nodes.len() {
            self.push(release, Event::NodeReady(NodeId(i as u32)));
        }
    }

    /// Classify the phase that starts at the barrier just held: fold
    /// the precomputed send-mask unions of every node's current
    /// segment (e-cube routes never leave the mask `src ^ dst`, so any
    /// address bits outside the union are a valid shard axis) and pick
    /// the widest [`ShardPlan`] avoiding them. A phase whose sends
    /// cover every bit — or an UNFORCED payload buffered across the
    /// phase boundary — runs on the globally serialized path instead.
    fn phase_mode(&self, compiled: &Compiled) -> PhaseMode {
        let mut used = 0u32;
        for (i, st) in self.nodes.iter().enumerate() {
            if st.status == Status::Done {
                continue;
            }
            let p = &compiled.programs[i];
            let segs = &compiled.segs[p.segs_start as usize..p.segs_end as usize];
            // Last segment starting at or before the node's pc (at a
            // held barrier the pc sits exactly on a segment start).
            let k = segs.partition_point(|&(start, _)| start as usize <= st.pc);
            if k > 0 {
                used |= segs[k - 1].1;
            }
        }
        let plan = if self.buffered.is_empty() {
            ShardPlan::avoiding(self.cfg.dimension, self.cfg.shards, used)
        } else {
            None
        };
        match plan {
            Some(plan) => PhaseMode::Windowed(plan),
            None => PhaseMode::Global { cross_sends: self.cross_sends(compiled) },
        }
    }

    /// Cross-shard sends of the phase ahead under the *configured*
    /// top-bit layout — telemetry for phases forced onto the global
    /// path (the per-op walk only runs on that already-serialized
    /// path).
    fn cross_sends(&self, compiled: &Compiled) -> u64 {
        let plan = ShardPlan::new(self.cfg.dimension, self.cfg.shards);
        let mut cross = 0u64;
        for (i, st) in self.nodes.iter().enumerate() {
            if st.status == Status::Done {
                continue;
            }
            let ops = compiled.programs[i].ops(&compiled.ops);
            let home = plan.shard_of(i as u32);
            for op in &ops[st.pc..] {
                match op {
                    CompiledOp::Barrier => break,
                    CompiledOp::Send { dst, .. } if plan.shard_of(dst.0) != home => cross += 1,
                    _ => {}
                }
            }
        }
        cross
    }

    /// Execute ops at node `x` starting at time `t` until it blocks,
    /// yields, or finishes.
    fn step_node(&mut self, x: NodeId, t: SimTime, compiled: &Compiled) -> Result<(), SimError> {
        let xi = x.index();
        if self.nodes[xi].status == Status::Done {
            return Ok(()); // stale wake-up after completion
        }
        self.nodes[xi].status = Status::Ready;
        loop {
            let pc = self.nodes[xi].pc;
            let Some(op) = compiled.programs[xi].ops(&compiled.ops).get(pc) else {
                self.nodes[xi].status = Status::Done;
                self.nodes[xi].finish = t;
                return Ok(());
            };
            match op {
                CompiledOp::PostRecv { slot, start, end, tag } => {
                    self.nodes[xi].pc += 1;
                    let slot = *slot as usize;
                    let gi = self.slot_base[xi] as usize + slot;
                    if self.slots[gi].flags & SLOT_BUFFERED != 0 {
                        // Late post of a buffered UNFORCED message.
                        let (tag, into) = (*tag, *start as usize..*end as usize);
                        self.slots[gi].flags &= !SLOT_BUFFERED;
                        let payload = self.buffered.remove(&(gi as u32)).expect("buffered payload");
                        self.deliver_into(x, slot, tag, &payload, into)?;
                        self.recycle(payload);
                    } else {
                        let s = &mut self.slots[gi];
                        s.start = *start;
                        s.end = *end;
                        s.flags |= SLOT_POSTED;
                    }
                }
                CompiledOp::Send { dst, start, end, dst_slot, tag, kind } => {
                    // Self-sends were rejected by the compile pass
                    // (`SimError::SelfSend`), so `dst != x` here.
                    let (dst, from, tag, kind, dst_slot) =
                        (*dst, *start as usize..*end as usize, *tag, *kind, *dst_slot);
                    if self.pair_is_dead(x, dst) {
                        // Partial-fault semantics: the pair's subcube
                        // offers no route — skip the send (the matching
                        // WaitRecv at the receiver skips too).
                        self.nodes[xi].pc += 1;
                        let job = self.job_of(x);
                        if let Some(js) = self.stats.jobs.get_mut(job) {
                            js.dead_pairs_skipped += 1;
                        }
                        continue;
                    }
                    self.nodes[xi].pc += 1;
                    let id = self.issue_transmission(x, dst, tag, kind, from, dst_slot, t);
                    self.nodes[xi].status = Status::Sending(id);
                    self.run_pending_scan(t);
                    return Ok(());
                }
                CompiledOp::WaitRecv { slot, src, .. } => {
                    if self.pair_is_dead(*src, x) {
                        // The sender skipped this pair; don't block on
                        // a message that will never arrive.
                        self.nodes[xi].pc += 1;
                        continue;
                    }
                    let gi = self.slot_base[xi] as usize + *slot as usize;
                    if self.slots[gi].flags & SLOT_DELIVERED != 0 {
                        self.nodes[xi].pc += 1;
                    } else {
                        self.nodes[xi].status = Status::Waiting(*slot);
                        return Ok(());
                    }
                }
                CompiledOp::Permute { perm_idx, block_bytes } => {
                    self.nodes[xi].pc += 1;
                    let perm = &compiled.perms[*perm_idx as usize];
                    let block_bytes = *block_bytes as usize;
                    let total = perm.len() * block_bytes;
                    apply_block_permutation(
                        &mut self.memories[xi],
                        perm,
                        block_bytes,
                        &mut self.scratch,
                    );
                    let dur = self.cfg.shuffle_ns(total);
                    self.push(t.plus_ns(dur), Event::NodeReady(x));
                    self.nodes[xi].status = Status::Ready;
                    return Ok(());
                }
                CompiledOp::Barrier => {
                    self.nodes[xi].pc += 1;
                    self.nodes[xi].status = Status::InBarrier;
                    // Barriers are job-local: only the entering job's
                    // contexts count toward (and wake from) it.
                    let job = self.job_of(x);
                    self.barrier_entered[job] += 1;
                    self.last_barrier_entry = t;
                    if let Some(sink) = self.sink.as_mut() {
                        sink.barrier_entry[xi] = t;
                    }
                    if self.barrier_entered[job] == self.barrier_target {
                        self.barrier_entered[job] = 0;
                        self.stats.barriers += 1;
                        let release = t.plus_ns(self.cfg.barrier_ns());
                        if self.sink.is_some() {
                            self.emit_barrier(job, t, release);
                        }
                        if self.barrier_hold {
                            // Sharded driver: stop at the phase
                            // boundary instead of waking the nodes; the
                            // event queue drains empty and the driver
                            // decides how the next phase executes.
                            self.held_release = Some(release);
                        } else {
                            let per_job = (self.node_mask + 1) as usize;
                            for i in job * per_job..(job + 1) * per_job {
                                self.push(release, Event::NodeReady(NodeId(i as u32)));
                            }
                        }
                    }
                    return Ok(());
                }
                CompiledOp::Compute { ns } => {
                    self.nodes[xi].pc += 1;
                    self.push(t.plus_ns(*ns), Event::NodeReady(x));
                    return Ok(());
                }
                CompiledOp::Mark { label } => {
                    self.nodes[xi].pc += 1;
                    let entry = self.stats.marks.entry(*label).or_insert(t);
                    if *entry < t {
                        *entry = t;
                    }
                }
            }
        }
    }

    /// Whether `(src, dst)` is a dead pair under
    /// [`NetCondition::skip_dead_pairs`] (always false otherwise).
    #[inline]
    fn pair_is_dead(&self, src: NodeId, dst: NodeId) -> bool {
        match &self.conditioned {
            Some(c) if !c.dead_pairs.is_empty() => {
                c.dead_pairs.contains(&(src.0 & self.node_mask, (src.0 ^ dst.0) & self.node_mask))
            }
            _ => false,
        }
    }

    /// Trace hook (cold): emit the job-level barrier span plus one
    /// barrier-wait span per context of the job, from each context's
    /// recorded entry time to the release.
    fn emit_barrier(&mut self, job: usize, last_entry: SimTime, release: SimTime) {
        let per_job = (self.node_mask + 1) as usize;
        let Some(sink) = self.sink.as_mut() else { return };
        sink.emit(TraceEvent::Barrier { job: job as u32, start: last_entry, end: release });
        for i in job * per_job..(job + 1) * per_job {
            let start = sink.barrier_entry[i];
            sink.emit(TraceEvent::Wait {
                node: NodeId(i as u32),
                cause: WaitCause::Barrier,
                start,
                end: release,
            });
        }
    }

    /// A flow-controlled transmission was dropped (lossy link) or
    /// refused (drop-tail / NACK at circuit establishment): shrink the
    /// source's window, charge its retry budget, and schedule the
    /// go-back-n retransmission — or raise the typed
    /// [`SimError::RetriesExhausted`] when the budget is gone. `nack`
    /// selects the short fixed NACK delay over the cwnd-scaled
    /// backoff.
    fn drop_transmission(&mut self, id: TransmissionId, t: SimTime, nack: bool) {
        let (src, dst) = {
            let tr = self.tr(id);
            (tr.src, tr.dst)
        };
        let job = self.job_of(src);
        let ctx = src.index();
        self.stats.flow_drops += 1;
        if let Some(js) = self.stats.jobs.get_mut(job) {
            js.drops += 1;
        }
        let cwnd_before = self.flow_cwnd[ctx].cwnd();
        self.flow_cwnd[ctx].on_drop();
        let cwnd_after = self.flow_cwnd[ctx].cwnd();
        if let Some(sink) = self.sink.as_mut() {
            sink.emit(TraceEvent::Flow { job: job as u32, node: src, kind: FlowKind::Drop, at: t });
            if cwnd_after != cwnd_before {
                sink.emit(TraceEvent::Flow {
                    job: job as u32,
                    node: src,
                    kind: FlowKind::Cwnd { window: cwnd_after },
                    at: t,
                });
            }
        }
        self.flow_retries[ctx] += 1;
        // Off the pending list until the retransmission fires.
        self.tr_mut(id).pending = false;
        let fc = self.flow[job].expect("drop on a non-flow-controlled job");
        if self.flow_retries[ctx] > fc.max_retries {
            if self.fatal.is_none() {
                self.fatal = Some(SimError::RetriesExhausted {
                    job: job as u32,
                    src,
                    dst,
                    retries: self.flow_retries[ctx],
                });
            }
            return;
        }
        let delay = if nack { (fc.rto_ns / 8).max(1) } else { fc.backoff_ns(&self.flow_cwnd[ctx]) };
        let until = t.plus_ns(delay);
        if let Some(sink) = self.sink.as_mut() {
            sink.emit(TraceEvent::Flow {
                job: job as u32,
                node: src,
                kind: FlowKind::Backoff { until },
                at: t,
            });
        }
        self.push(until, Event::Retransmit(id));
    }

    /// Re-issue a dropped transmission: back onto the pending list
    /// under a fresh queue sequence, exactly as if it had just been
    /// issued (the payload — in-place or owned — never moved).
    fn fire_retransmit(&mut self, id: TransmissionId, t: SimTime) {
        let src = match self.tr_live(id) {
            Some(tr) => tr.src,
            None => return,
        };
        let job = self.job_of(src);
        self.stats.retransmissions += 1;
        if let Some(js) = self.stats.jobs.get_mut(job) {
            js.retransmissions += 1;
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.emit(TraceEvent::Flow {
                job: job as u32,
                node: src,
                kind: FlowKind::Retransmit,
                at: t,
            });
        }
        let qseq = self.next_qseq;
        self.next_qseq += 1;
        {
            let tr = self.tr_mut(id);
            tr.requested_at = t;
            tr.blocked_by_link = false;
            tr.blocked_by_nic = false;
            tr.qseq = qseq;
            tr.pending = true;
        }
        self.dirty_insert((qseq, id));
        self.run_pending_scan(t);
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_transmission(
        &mut self,
        src: NodeId,
        dst: NodeId,
        tag: Tag,
        kind: MsgKind,
        from: Range<usize>,
        dst_slot: u32,
        t: SimTime,
    ) -> TransmissionId {
        if self.cfg.switching == SwitchingMode::Circuit {
            // Zero-copy: the sender blocks for the whole circuit, so
            // the bytes stay in its memory until delivery (or until an
            // inbound delivery into the range materializes them).
            let inplace = Some((from.start as u32, from.end as u32));
            let id =
                self.issue_payload(src, dst, tag, kind, Vec::new(), inplace, dst_slot, t, false);
            self.inplace_out[src.index()] = Some(id);
            return id;
        }
        // Store-and-forward frees the sender after hop 0 — its memory
        // may change while the message is in flight — so copy now.
        let payload = self.copy_out_of_memory(src, from);
        self.issue_payload(src, dst, tag, kind, payload, None, dst_slot, t, false)
    }

    /// Fire one injection of background stream `si`: a link-occupying
    /// transmission that bypasses NIC state and delivery. Schedules the
    /// stream's next injection.
    fn inject_background(&mut self, si: usize, t: SimTime) {
        let (src, dst, bytes, period_ns, remaining) = {
            let cond = self.conditioned.as_mut().expect("Inject event on unconditioned run");
            let s = cond.streams[si];
            cond.remaining[si] -= 1;
            (s.src, s.dst, s.bytes, s.period_ns, cond.remaining[si])
        };
        let mut payload = self.pool.pop().unwrap_or_default();
        payload.clear();
        payload.resize(bytes, 0);
        self.issue_payload(
            src,
            dst,
            background_tag(si),
            MsgKind::Forced,
            payload,
            None,
            NO_SLOT,
            t,
            true,
        );
        if remaining > 0 {
            self.push(t.plus_ns(period_ns), Event::Inject(si as u32));
        }
        self.run_pending_scan(t);
    }

    /// Price one transmission (or one store-and-forward hop) over
    /// conditioned links: duration, the UNFORCED reserve surcharge
    /// and jitter, as a pure function of `(bytes, kind, factors, id)`
    /// — the single source of truth shared by the issue path and the
    /// store-and-forward hop-repricing path, so the two cannot
    /// diverge. (The reserve-handshake *statistic* is counted once at
    /// issue, not here.)
    fn conditioned_priced_ns(
        &self,
        bytes: usize,
        kind: MsgKind,
        max_f: f64,
        sum_f: f64,
        id: TransmissionId,
    ) -> u64 {
        let mut dur = self.cfg.conditioned_transmission_ns(bytes, max_f, sum_f);
        if kind == MsgKind::Unforced && bytes > self.cfg.params.unforced_threshold {
            dur += self.cfg.conditioned_reserve_ack_ns(sum_f);
        }
        if self.cfg.jitter_frac > 0.0 {
            dur = jitter(dur, self.cfg.jitter_frac, self.cfg.seed, id);
        }
        dur
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_payload(
        &mut self,
        src: NodeId,
        dst: NodeId,
        tag: Tag,
        kind: MsgKind,
        payload: Vec<u8>,
        inplace: Option<(u32, u32)>,
        dst_slot: u32,
        t: SimTime,
        background: bool,
    ) -> TransmissionId {
        let id = self.next_tid;
        self.next_tid += 1;
        let nbytes = match inplace {
            Some((s, e)) => (e - s) as usize,
            None => payload.len(),
        };
        // Same-job contexts differ only in physical-node bits, so the
        // xor-mask is the physical route mask; routes and links live on
        // the physical cube.
        let mask = src.0 ^ dst.0;
        let hops = mask.count_ones();
        let circuit = self.cfg.switching == SwitchingMode::Circuit;
        // Conditioned network: (max, sum) factors of the actual
        // (possibly fault-rerouted) path. For store-and-forward this
        // prices hop 0; later hops are re-priced as they queue.
        let factors = if self.links.has_speeds() {
            let mut buf = fresh_route_buf();
            let route = route_for(self.conditioned.as_ref(), self.phys(src), mask, &mut buf);
            Some(if circuit {
                self.links.segment_factors(route)
            } else {
                let f = self.links.factor(&route[0]);
                (f, f)
            })
        } else {
            None
        };
        if kind == MsgKind::Unforced && nbytes > self.cfg.params.unforced_threshold {
            self.stats.reserve_handshakes += 1;
        }
        let duration_ns = match factors {
            Some((max_f, sum_f)) => self.conditioned_priced_ns(nbytes, kind, max_f, sum_f, id),
            None => {
                // Integer pricing from the precomputed per-run rates;
                // bit-identical to `SimConfig::transmission_ns` /
                // `hop_ns` / `reserve_ack_ns`.
                let bytes = nbytes as u64;
                let lam = if bytes == 0 { self.ns_lambda0 } else { self.ns_lambda };
                let dur_hops = if circuit { hops as u64 } else { 1 };
                let mut dur = lam + self.ns_tau * bytes + self.ns_delta * dur_hops;
                if kind == MsgKind::Unforced && nbytes > self.cfg.params.unforced_threshold {
                    dur += 2 * (self.ns_lambda0 + self.ns_delta * dur_hops);
                }
                if self.cfg.jitter_frac > 0.0 {
                    dur = jitter(dur, self.cfg.jitter_frac, self.cfg.seed, id);
                }
                dur
            }
        };
        let qseq = self.next_qseq;
        self.next_qseq += 1;
        let tr = Transmission {
            payload,
            inplace,
            src,
            dst,
            mask,
            dst_slot,
            tag,
            duration_ns,
            requested_at: t,
            qseq,
            kind,
            hop_idx: 0,
            blocked_by_link: false,
            blocked_by_nic: false,
            pending: true,
            background,
        };
        let slot = match self.tr_free.pop() {
            Some(s) => {
                self.transmissions[s as usize] = Some(tr);
                s
            }
            None => {
                self.transmissions.push(Some(tr));
                self.tr_slot_ids.push(0);
                (self.transmissions.len() - 1) as u32
            }
        };
        self.tr_slot_ids[slot as usize] = id;
        debug_assert_eq!(self.id_to_slot.len() as u64, id - 1);
        self.id_to_slot.push(slot);
        self.dirty_insert((qseq, id));
        id
    }

    /// Sorted-unique insert into the dirty list.
    fn dirty_insert(&mut self, key: (u64, TransmissionId)) {
        match self.dirty.binary_search(&key) {
            Ok(_) => {}
            Err(i) => self.dirty.insert(i, key),
        }
    }

    /// Move every watcher of the segment's links onto the dirty set.
    /// Called for both acquires (a watcher may need its blocked-by-link
    /// flag and contention accounting updated) and releases (a watcher
    /// may now start).
    fn wake_link_watchers(&mut self, segment: &[DirectedLink]) {
        if self.link_watch_entries == 0 {
            return;
        }
        for link in segment {
            let Some(watchers) = self.link_watch.get_mut(link) else { continue };
            if watchers.is_empty() {
                continue;
            }
            let woken = std::mem::take(watchers);
            self.link_watch_entries -= woken.len();
            for id in woken {
                if let Some(tr) = self.tr_live(id) {
                    if tr.pending {
                        let key = (tr.qseq, id);
                        self.dirty_insert(key);
                    }
                }
            }
        }
    }

    /// Move every watcher of node `x`'s NIC state onto the dirty set.
    fn wake_node_watchers(&mut self, x: NodeId) {
        if self.node_watch[x.index()].is_empty() {
            return;
        }
        let woken = std::mem::take(&mut self.node_watch[x.index()]);
        for id in woken {
            if let Some(tr) = self.tr_live(id) {
                if tr.pending {
                    let key = (tr.qseq, id);
                    self.dirty_insert(key);
                }
            }
        }
    }

    /// Retry dirty pending transmissions in global queue order at time
    /// `t`. Equivalent to one pass of the old `try_start_pending`
    /// rescan: candidates dirtied *during* the pass join it only at
    /// positions after the current cursor (exactly the state a single
    /// in-order sweep would observe); earlier ones stay dirty for the
    /// next trigger.
    fn run_pending_scan(&mut self, t: SimTime) {
        // Time-lapse wake-ups: NIC-window conditions expired by t.
        while let Some((at, qseq, id)) = self.sched.lapse.peek() {
            if at > t.as_ns() {
                break;
            }
            self.sched.lapse.pop();
            if let Some(tr) = self.tr_live(id) {
                if tr.pending && tr.qseq == qseq {
                    self.dirty_insert((qseq, id));
                }
            }
        }
        let mut cursor: Option<(u64, TransmissionId)> = None;
        loop {
            // First dirty key strictly beyond the cursor; entries
            // dirtied mid-scan at earlier positions wait for the next
            // trigger, exactly like the old one-pass rescan.
            let idx = match cursor {
                None => 0,
                Some(c) => self.dirty.partition_point(|&k| k <= c),
            };
            if idx >= self.dirty.len() {
                break;
            }
            let key = self.dirty.remove(idx);
            cursor = Some(key);
            let (qseq, id) = key;
            let alive = matches!(
                self.tr_live(id),
                Some(tr) if tr.pending && tr.qseq == qseq
            );
            if alive {
                self.try_start(id, t);
            }
        }
    }

    /// Try to establish the next segment of transmission `id` at time
    /// `t`: the whole circuit in circuit mode, the next single hop in
    /// store-and-forward mode. On failure, registers the wait-queue
    /// watchers that will re-dirty the transmission.
    fn try_start(&mut self, id: TransmissionId, t: SimTime) -> bool {
        let saf = self.cfg.switching == SwitchingMode::StoreAndForward;
        let (src, dst, mask, hop_idx, background) = {
            let tr = self.tr(id);
            (tr.src, tr.dst, tr.mask, tr.hop_idx as usize, tr.background)
        };
        let mut route_buf = fresh_route_buf();
        let route = route_for(self.conditioned.as_ref(), self.phys(src), mask, &mut route_buf);
        let segment = if saf { &route[hop_idx..hop_idx + 1] } else { route };
        let links_free = self.links.all_free(segment);
        let first_hop = hop_idx == 0;
        let last_hop = !saf || hop_idx + 1 == route.len();
        if !links_free {
            // Reactive sources under a drop-tail/NACK policy: when the
            // blocking link's wait queue is already at the limit, the
            // switch refuses the circuit instead of queueing it.
            if !background && !saf {
                let limit = match self.link_policy {
                    Some(LinkPolicy::DropTail { queue_limit }) => Some((queue_limit, false)),
                    Some(LinkPolicy::Nack { queue_limit }) => Some((queue_limit, true)),
                    _ => None,
                };
                if let Some((queue_limit, nack)) = limit {
                    if self.flow_of(src).is_some() {
                        let queued = segment
                            .iter()
                            .filter(|l| !self.links.all_free(std::slice::from_ref(l)))
                            .map(|l| self.link_watch.get(l).map_or(0, Vec::len))
                            .max()
                            .unwrap_or(0);
                        if queued as u32 >= queue_limit {
                            self.drop_transmission(id, t, nack);
                            return false;
                        }
                    }
                }
            }
            let tr = self.tr_mut(id);
            if !tr.blocked_by_link {
                tr.blocked_by_link = true;
                // Background injections contend but stay out of the
                // algorithm's contention statistics.
                if !background {
                    self.stats.edge_contention_events += 1;
                }
            }
            self.watch_segment(id, segment);
            return false;
        }
        // NIC concurrency window (Section 7.2): outgoing at `src` may
        // not overlap an incoming unless their starts are within the
        // window; symmetrically for the receiver's active outgoing.
        // The NIC is physical-node hardware, so on multi-job runs the
        // intervals of every co-tenant context of the node count.
        // Background traffic models pass-through circuits from other
        // partitions: it occupies links only and bypasses the NIC rule.
        let window = self.cfg.concurrency_window_ns;
        let per_job = (self.node_mask + 1) as usize;
        let (phys_src, phys_dst) =
            ((src.0 & self.node_mask) as usize, (dst.0 & self.node_mask) as usize);
        let nic_conflict = !background && {
            let incoming_conflict = first_hop
                && (0..self.num_jobs).any(|j| {
                    self.nodes[j * per_job + phys_src]
                        .incoming
                        .iter()
                        .any(|&(_, start, end)| end > t && t.since(start) > window)
                });
            let outgoing_conflict = last_hop
                && (0..self.num_jobs).any(|j| match self.nodes[j * per_job + phys_dst].outgoing {
                    Some((_, start, end)) => end > t && t.since(start) > window,
                    None => false,
                });
            incoming_conflict || outgoing_conflict
        };
        if nic_conflict {
            {
                let tr = self.tr_mut(id);
                if !tr.blocked_by_nic {
                    tr.blocked_by_nic = true;
                    self.stats.nic_serialization_events += 1;
                }
            }
            // Wake when one of our links is touched, when the blocking
            // endpoints' NIC intervals change, or when the earliest
            // blocking interval lapses by the passage of time alone.
            self.watch_segment(id, segment);
            let mut next_lapse = u64::MAX;
            if first_hop {
                if !self.node_watch[phys_src].contains(&id) {
                    self.node_watch[phys_src].push(id);
                }
                for j in 0..self.num_jobs {
                    for &(_, start, end) in &self.nodes[j * per_job + phys_src].incoming {
                        if end > t && t.since(start) > window {
                            next_lapse = next_lapse.min(end.as_ns());
                        }
                    }
                }
            }
            if last_hop {
                if !self.node_watch[phys_dst].contains(&id) {
                    self.node_watch[phys_dst].push(id);
                }
                for j in 0..self.num_jobs {
                    if let Some((_, start, end)) = self.nodes[j * per_job + phys_dst].outgoing {
                        if end > t && t.since(start) > window {
                            next_lapse = next_lapse.min(end.as_ns());
                        }
                    }
                }
            }
            if next_lapse != u64::MAX {
                let qseq = self.tr(id).qseq;
                self.lapse_pushes += 1;
                self.sched.lapse.push(next_lapse, qseq, id);
            }
            return false;
        }
        // Start: hold the segment for its duration.
        let (end, bytes, tag) = {
            let tr = self.tr_mut(id);
            tr.pending = false;
            (t.plus_ns(tr.duration_ns), tr.payload_len(), tr.tag)
        };
        self.links.acquire(segment, id);
        if background {
            if first_hop {
                self.stats.background_transmissions += 1;
                self.stats.background_bytes += bytes as u64;
            }
        } else {
            self.stats.link_crossings += segment.len() as u64;
            if first_hop {
                self.nodes[src.index()].outgoing = Some((id, t, end));
                self.wake_node_watchers(self.phys(src));
                self.stats.transmissions += 1;
                self.stats.bytes_moved += bytes as u64;
            }
            if last_hop {
                self.nodes[dst.index()].incoming.push((id, t, end));
                self.wake_node_watchers(self.phys(dst));
            }
            let tr = self.tr(id);
            let wait = t.since(tr.requested_at);
            let (by_link, by_nic) = (tr.blocked_by_link, tr.blocked_by_nic);
            if by_link {
                self.stats.edge_contention_wait_ns += wait;
            } else if by_nic {
                self.stats.nic_serialization_wait_ns += wait;
            }
            if !self.stats.jobs.is_empty() {
                let job = self.job_of(src);
                let js = &mut self.stats.jobs[job];
                if first_hop {
                    js.transmissions += 1;
                    js.bytes_moved += bytes as u64;
                }
                if by_link {
                    js.edge_contention_wait_ns += wait;
                } else if by_nic {
                    js.nic_wait_ns += wait;
                }
            }
        }
        // An acquire can flip a watcher's blocking cause; give link
        // watchers their in-order look at the new state.
        self.wake_link_watchers(segment);
        if self.sink.is_some() {
            let (requested_at, by_link, by_nic) = {
                let tr = self.tr(id);
                (tr.requested_at, tr.blocked_by_link, tr.blocked_by_nic)
            };
            let Some(sink) = self.sink.as_mut() else { unreachable!() };
            // The full hold extent is known at establishment, so every
            // span is emitted complete — no start/end pairing.
            for link in segment {
                sink.emit(TraceEvent::LinkHold {
                    from: link.from,
                    to: link.to,
                    start: t,
                    end,
                    tag,
                    bytes,
                    background,
                });
            }
            if !background {
                if first_hop {
                    sink.emit(TraceEvent::NicSend { node: src, start: t, end, tag, bytes });
                }
                if last_hop {
                    sink.emit(TraceEvent::NicRecv { node: dst, start: t, end, tag });
                }
                let wait = t.since(requested_at);
                if wait > 0 && (by_link || by_nic) {
                    let cause = if by_link { WaitCause::Contention } else { WaitCause::NicLapse };
                    sink.emit(TraceEvent::Wait { node: src, cause, start: requested_at, end: t });
                }
            }
        }
        self.push(end, Event::TransmissionEnd(id));
        true
    }

    /// Register `id` on every directed link of its current segment.
    fn watch_segment(&mut self, id: TransmissionId, segment: &[DirectedLink]) {
        for link in segment {
            let watchers = self.link_watch.entry(*link).or_default();
            if !watchers.contains(&id) {
                watchers.push(id);
                self.link_watch_entries += 1;
            }
        }
    }

    fn finish_transmission(&mut self, id: TransmissionId, t: SimTime) -> Result<(), SimError> {
        if self.cfg.switching == SwitchingMode::StoreAndForward {
            // Release the completed hop; advance or deliver.
            let (done, was_first, hop, background) = {
                let mut route_buf = fresh_route_buf();
                let (src, mask) = {
                    let tr = self.tr(id);
                    (self.phys(tr.src), tr.mask)
                };
                let route = route_for(self.conditioned.as_ref(), src, mask, &mut route_buf);
                let tr = self.tr_mut(id);
                let hop = route[tr.hop_idx as usize];
                let was_first = tr.hop_idx == 0;
                tr.hop_idx += 1;
                let done = tr.hop_idx as usize == route.len();
                (done, was_first, hop, tr.background)
            };
            self.links.release(std::slice::from_ref(&hop), id);
            self.wake_link_watchers(std::slice::from_ref(&hop));
            if was_first && !background {
                // The sender's buffer is free once the message is
                // stored at the first intermediate node.
                let src = self.tr(id).src;
                self.nodes[src.index()].outgoing = None;
                self.wake_node_watchers(self.phys(src));
                self.push(t, Event::NodeReady(src));
            }
            if !done {
                // Queue the next hop (clear one-shot blocking flags so
                // each hop's wait is accounted once).
                let qseq = self.next_qseq;
                self.next_qseq += 1;
                if self.links.has_speeds() {
                    // Conditioned network: re-price the next hop by its
                    // own link factor (heterogeneous hops differ).
                    let (src, mask, hop_idx, bytes, kind) = {
                        let tr = self.tr(id);
                        (self.phys(tr.src), tr.mask, tr.hop_idx as usize, tr.payload_len(), tr.kind)
                    };
                    let mut route_buf = fresh_route_buf();
                    let route = route_for(self.conditioned.as_ref(), src, mask, &mut route_buf);
                    let f = self.links.factor(&route[hop_idx]);
                    let dur = self.conditioned_priced_ns(bytes, kind, f, f, id);
                    self.tr_mut(id).duration_ns = dur;
                }
                {
                    let tr = self.tr_mut(id);
                    tr.requested_at = t;
                    tr.blocked_by_link = false;
                    tr.blocked_by_nic = false;
                    tr.qseq = qseq;
                    tr.pending = true;
                }
                self.dirty_insert((qseq, id));
                self.run_pending_scan(t);
                return Ok(());
            }
            // Fall through to delivery below.
            let tr = self.take_tr(id);
            if !tr.background {
                let dst = tr.dst;
                self.nodes[dst.index()].incoming.retain(|&(iid, _, _)| iid != id);
                self.wake_node_watchers(self.phys(dst));
            }
            return self.deliver_and_wake(tr, t, false);
        }
        // Lossy-link policy: a flow-controlled circuit may complete its
        // full (priced) duration and still lose the payload. Decide
        // BEFORE taking the transmission out of the slab — a lost one
        // stays live (its in-place payload included) for the
        // retransmission.
        let lost = {
            let tr = self.tr(id);
            !tr.background
                && match self.link_policy {
                    Some(LinkPolicy::Lossy { loss_per_myriad, seed }) => {
                        // Retransmissions reuse the slab id, so mix the
                        // source's attempt count into the coin key —
                        // each retry draws a fresh coin instead of
                        // replaying the loss forever.
                        self.flow_of(tr.src).is_some()
                            && lossy_coin(
                                seed,
                                id.wrapping_add(
                                    (self.flow_retries[tr.src.index()] as u64)
                                        .wrapping_mul(crate::fxhash::SPLITMIX64_GOLDEN),
                                ),
                                loss_per_myriad,
                            )
                    }
                    _ => false,
                }
        };
        if lost {
            let (src, dst, mask) = {
                let tr = self.tr(id);
                (tr.src, tr.dst, tr.mask)
            };
            let mut route_buf = fresh_route_buf();
            let route = route_for(self.conditioned.as_ref(), self.phys(src), mask, &mut route_buf);
            self.links.release(route, id);
            self.wake_link_watchers(route);
            let src_state = &mut self.nodes[src.index()];
            debug_assert!(matches!(src_state.outgoing, Some((oid, _, _)) if oid == id));
            src_state.outgoing = None;
            self.wake_node_watchers(self.phys(src));
            self.nodes[dst.index()].incoming.retain(|&(iid, _, _)| iid != id);
            self.wake_node_watchers(self.phys(dst));
            self.drop_transmission(id, t, false);
            self.run_pending_scan(t);
            return Ok(());
        }
        let tr = self.take_tr(id);
        let mut route_buf = fresh_route_buf();
        let route =
            route_for(self.conditioned.as_ref(), self.phys(tr.src), tr.mask, &mut route_buf);
        self.links.release(route, id);
        self.wake_link_watchers(route);
        if !tr.background {
            let src_state = &mut self.nodes[tr.src.index()];
            debug_assert!(matches!(src_state.outgoing, Some((oid, _, _)) if oid == id));
            src_state.outgoing = None;
            self.wake_node_watchers(self.phys(tr.src));
            let dst_state = &mut self.nodes[tr.dst.index()];
            dst_state.incoming.retain(|&(iid, _, _)| iid != id);
            self.wake_node_watchers(self.phys(tr.dst));
            // Acknowledge the completed circuit to the source's
            // congestion window and re-arm its retry budget.
            if !self.flow.is_empty() && self.flow_of(tr.src).is_some() {
                let ctx = tr.src.index();
                let cwnd_before = self.flow_cwnd[ctx].cwnd();
                self.flow_cwnd[ctx].on_ack();
                let cwnd_after = self.flow_cwnd[ctx].cwnd();
                self.flow_retries[ctx] = 0;
                if cwnd_after != cwnd_before {
                    let job = self.job_of(tr.src) as u32;
                    if let Some(sink) = self.sink.as_mut() {
                        sink.emit(TraceEvent::Flow {
                            job,
                            node: tr.src,
                            kind: FlowKind::Cwnd { window: cwnd_after },
                            at: t,
                        });
                    }
                }
            }
        }

        let wake_sender = !tr.background;
        self.deliver_and_wake(tr, t, wake_sender)
    }

    /// Deliver a completed transmission's payload and wake the
    /// affected nodes. `wake_sender` is false in store-and-forward
    /// mode, where the sender was already released after hop 0.
    fn deliver_and_wake(
        &mut self,
        tr: Transmission,
        t: SimTime,
        wake_sender: bool,
    ) -> Result<(), SimError> {
        if tr.background {
            // Background payloads are never delivered: the bytes model
            // traffic from outside the partition. Freed links may
            // unblock pending circuits.
            self.recycle(tr.payload);
            self.run_pending_scan(t);
            return Ok(());
        }

        // Deliver the payload (moved — or copied straight out of the
        // sender's memory on the zero-copy path — never cloned twice).
        if tr.inplace.is_some() {
            self.inplace_out[tr.src.index()] = None;
        }
        let di = tr.dst.index();
        let slot = tr.dst_slot;
        let posted = if slot != NO_SLOT {
            let s = &mut self.slots[self.slot_base[di] as usize + slot as usize];
            if s.flags & SLOT_POSTED != 0 {
                s.flags &= !SLOT_POSTED;
                Some(s.start as usize..s.end as usize)
            } else {
                None
            }
        } else {
            None
        };
        if let Some(into) = posted {
            match tr.inplace {
                Some(range) => {
                    self.deliver_inplace(tr.src, range, tr.dst, slot as usize, tr.tag, into)?;
                }
                None => {
                    self.deliver_into(tr.dst, slot as usize, tr.tag, &tr.payload, into)?;
                    self.recycle(tr.payload);
                }
            }
            if self.nodes[di].status == Status::Waiting(slot) {
                self.push(t, Event::NodeReady(tr.dst));
            }
        } else {
            match tr.kind {
                MsgKind::Forced => {
                    self.stats.forced_drops += 1;
                    if let Some(sink) = self.sink.as_mut() {
                        sink.emit(TraceEvent::ForcedDrop {
                            src: tr.src,
                            dst: tr.dst,
                            tag: tr.tag,
                            at: t,
                        });
                    }
                    self.recycle(tr.payload);
                }
                MsgKind::Unforced => {
                    if slot != NO_SLOT {
                        // Buffering outlives the sender's blocked
                        // window: materialize an in-place payload now.
                        let payload = match tr.inplace {
                            Some((ps, pe)) => {
                                self.copy_out_of_memory(tr.src, ps as usize..pe as usize)
                            }
                            None => tr.payload,
                        };
                        let gi = self.slot_base[di] + slot;
                        self.slots[gi as usize].flags |= SLOT_BUFFERED;
                        self.buffered.insert(gi, payload);
                    } else {
                        // The receiver never posts this key; the bytes
                        // are unobservable.
                        self.recycle(tr.payload);
                    }
                }
            }
        }

        if wake_sender {
            // The blocking send completes: wake the sender.
            self.push(t, Event::NodeReady(tr.src));
        }
        // Freed links / NIC units may unblock pending circuits.
        self.run_pending_scan(t);
        Ok(())
    }

    /// A delivery is about to write `memories[x][into]`: if `x` has an
    /// outstanding in-place outgoing payload overlapping that range,
    /// copy its bytes out *first*, preserving the frozen-at-issue
    /// payload semantics of the copying engine exactly.
    fn materialize_overlap(&mut self, x: NodeId, into: &Range<usize>) {
        let xi = x.index();
        let Some(oid) = self.inplace_out[xi] else { return };
        let (ps, pe) = self.tr(oid).inplace.expect("inplace_out names an in-place transmission");
        if (ps as usize) < into.end && into.start < pe as usize {
            let buf = self.copy_out_of_memory(x, ps as usize..pe as usize);
            let tr = self.tr_mut(oid);
            tr.payload = buf;
            tr.inplace = None;
            self.inplace_out[xi] = None;
        }
    }

    /// Deliver a zero-copy payload: one copy, straight from the
    /// sender's memory range into the receiver's posted range.
    fn deliver_inplace(
        &mut self,
        src: NodeId,
        (ps, pe): (u32, u32),
        node: NodeId,
        slot: usize,
        tag: Tag,
        into: Range<usize>,
    ) -> Result<(), SimError> {
        let sent = (pe - ps) as usize;
        if into.len() != sent {
            return Err(SimError::SizeMismatch { node, tag, posted: into.len(), sent });
        }
        self.materialize_overlap(node, &into);
        let (si, di) = (src.index(), node.index());
        debug_assert_ne!(si, di, "self-sends are rejected at compile time");
        let (src_mem, dst_mem): (&[u8], &mut [u8]) = if si < di {
            let (left, right) = self.memories.split_at_mut(di);
            (&left[si], &mut right[0])
        } else {
            let (left, right) = self.memories.split_at_mut(si);
            (&right[0], &mut left[di])
        };
        dst_mem[into].copy_from_slice(&src_mem[ps as usize..pe as usize]);
        self.slots[self.slot_base[di] as usize + slot].flags |= SLOT_DELIVERED;
        Ok(())
    }

    /// Copy a payload into the slot's memory range and mark delivery.
    fn deliver_into(
        &mut self,
        node: NodeId,
        slot: usize,
        tag: Tag,
        payload: &[u8],
        into: Range<usize>,
    ) -> Result<(), SimError> {
        if into.len() != payload.len() {
            return Err(SimError::SizeMismatch {
                node,
                tag,
                posted: into.len(),
                sent: payload.len(),
            });
        }
        self.materialize_overlap(node, &into);
        self.memories[node.index()][into.clone()].copy_from_slice(payload);
        self.slots[self.slot_base[node.index()] as usize + slot].flags |= SLOT_DELIVERED;
        Ok(())
    }
}

/// Apply a block permutation in place: block `i` moves to `perm[i]`.
/// `scratch` is a reusable staging buffer (grown on demand) so the hot
/// path never allocates. When the permutation covers the whole memory
/// — every builder in this repository permutes full node memories —
/// the permuted scratch is *swapped* in wholesale instead of copied
/// back, halving the memory traffic of the shuffle phases.
fn apply_block_permutation(
    memory: &mut Vec<u8>,
    perm: &[u32],
    block_bytes: usize,
    scratch: &mut Vec<u8>,
) {
    if block_bytes == 0 || perm.is_empty() {
        return;
    }
    let total = perm.len() * block_bytes;
    if total == memory.len() {
        // Full-memory permute: scatter into scratch, swap buffers.
        // (After the first call scratch is a previous memory of the
        // same length, so the resize is a no-op, not a memset.)
        scratch.resize(total, 0);
        for (i, &p) in perm.iter().enumerate() {
            let srcr = i * block_bytes..(i + 1) * block_bytes;
            let dstr = p as usize * block_bytes..(p as usize + 1) * block_bytes;
            scratch[dstr].copy_from_slice(&memory[srcr]);
        }
        std::mem::swap(memory, scratch);
        return;
    }
    if scratch.len() < total {
        scratch.resize(total, 0);
    }
    let scratch = &mut scratch[..total];
    for (i, &p) in perm.iter().enumerate() {
        let srcr = i * block_bytes..(i + 1) * block_bytes;
        let dstr = p as usize * block_bytes..(p as usize + 1) * block_bytes;
        scratch[dstr].copy_from_slice(&memory[srcr]);
    }
    memory[..total].copy_from_slice(scratch);
}

/// Deterministic multiplicative jitter in `[1 - frac, 1 + frac]`,
/// derived from (seed, transmission id) by splitmix64.
fn jitter(base_ns: u64, frac: f64, seed: u64, id: TransmissionId) -> u64 {
    let z = crate::fxhash::splitmix64_mix(seed ^ id.wrapping_mul(crate::fxhash::SPLITMIX64_GOLDEN));
    // Map to [-1, 1).
    let u = (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
    let scaled = base_ns as f64 * (1.0 + frac * u);
    scaled.round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_hypercube::routing::ecube_path;

    #[test]
    fn block_permutation_applies() {
        let mut scratch = Vec::new();
        let mut mem: Vec<u8> = (0..12).collect();
        // 3 blocks of 4 bytes; rotate blocks right: i -> (i+1) % 3.
        apply_block_permutation(&mut mem, &[1, 2, 0], 4, &mut scratch);
        assert_eq!(mem, vec![8, 9, 10, 11, 0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn identity_permutation_is_noop() {
        let mut scratch = Vec::new();
        let mut mem: Vec<u8> = (0..16).collect();
        let before = mem.clone();
        apply_block_permutation(&mut mem, &[0, 1, 2, 3], 4, &mut scratch);
        assert_eq!(mem, before);
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        let mut scratch = Vec::new();
        let mut mem: Vec<u8> = (0..32).collect();
        apply_block_permutation(&mut mem, &[1, 0], 16, &mut scratch);
        let cap = scratch.capacity();
        apply_block_permutation(&mut mem, &[1, 0], 16, &mut scratch);
        assert_eq!(scratch.capacity(), cap, "no reallocation on repeat");
        assert_eq!(mem, (0..32).collect::<Vec<u8>>());
    }

    #[test]
    fn expanded_route_matches_ecube_route() {
        for (s, t) in [(0u32, 0b10110u32), (5, 5), (31, 0), (2, 23)] {
            let mut buf = fresh_route_buf();
            let route = expand_route(NodeId(s), s ^ t, &mut buf);
            let expected: Vec<DirectedLink> = ecube_path(NodeId(s), NodeId(t)).links().collect();
            assert_eq!(route, &expected[..], "{s}->{t}");
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for id in 1..500u64 {
            let a = jitter(1_000_000, 0.05, 42, id);
            let b = jitter(1_000_000, 0.05, 42, id);
            assert_eq!(a, b);
            assert!((950_000..=1_050_000).contains(&a), "{a}");
        }
        // Different seeds give different streams.
        assert_ne!(jitter(1_000_000, 0.05, 1, 7), jitter(1_000_000, 0.05, 2, 7));
    }
}
