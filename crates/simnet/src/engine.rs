//! The discrete-event simulation engine.
//!
//! Nodes execute their [`Program`]s; the engine interleaves them in
//! simulated time, arbitrating directed-link circuits (edge
//! contention), the NIC send/receive concurrency window, FORCED /
//! UNFORCED delivery semantics and global barriers. Runs are
//! deterministic: events are ordered by `(time, sequence)` and all
//! iteration orders are fixed.

use crate::config::{SimConfig, SwitchingMode};
use crate::link::{LinkTable, TransmissionId};
use crate::message::{MsgKind, Tag};
use crate::program::{Op, Program};
use crate::stats::{SimStats, TraceEvent};
use crate::time::SimTime;
use mce_hypercube::routing::{ecube_path, DirectedLink};
use mce_hypercube::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::ops::Range;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Event queue drained before every node finished its program.
    /// Lists each stuck node with a description of what it waits on.
    /// This is how the "fatal" scenarios of Section 7.3 (FORCED
    /// message discarded because its receive was not yet posted)
    /// manifest.
    Deadlock {
        /// `(node, reason)` pairs for every unfinished node.
        stuck: Vec<(NodeId, String)>,
        /// FORCED messages that were discarded during the run.
        forced_drops: u64,
    },
    /// A message was delivered into a posted buffer of a different
    /// size.
    SizeMismatch {
        /// Receiving node.
        node: NodeId,
        /// Offending message tag.
        tag: Tag,
        /// Bytes posted for the receive.
        posted: usize,
        /// Bytes actually sent.
        sent: usize,
    },
    /// A program failed static validation.
    InvalidProgram {
        /// Offending node.
        node: NodeId,
        /// Validator message.
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { stuck, forced_drops } => {
                write!(f, "deadlock: {} node(s) stuck ({} forced drops):", stuck.len(), forced_drops)?;
                for (n, r) in stuck.iter().take(8) {
                    write!(f, " [{n}: {r}]")?;
                }
                Ok(())
            }
            SimError::SizeMismatch { node, tag, posted, sent } => write!(
                f,
                "size mismatch at node {node} tag {tag}: posted {posted} bytes, sent {sent}"
            ),
            SimError::InvalidProgram { node, reason } => {
                write!(f, "invalid program at node {node}: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of a successful run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Time the last node finished.
    pub finish_time: SimTime,
    /// Per-node finish times.
    pub node_finish: Vec<SimTime>,
    /// Final node memories.
    pub memories: Vec<Vec<u8>>,
    /// Aggregate statistics.
    pub stats: SimStats,
    /// Trace events (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    Ready,
    Waiting(NodeId, Tag),
    InBarrier,
    Sending(TransmissionId),
    Done,
}

#[derive(Debug)]
struct NodeState {
    pc: usize,
    status: Status,
    /// Posted receives not yet consumed: (src, tag) -> memory range.
    posted: HashMap<(NodeId, Tag), Range<usize>>,
    /// Arrived-and-delivered message keys.
    delivered: std::collections::HashSet<(NodeId, Tag)>,
    /// UNFORCED arrivals buffered before their receive was posted.
    buffered: HashMap<(NodeId, Tag), Vec<u8>>,
    /// Active outgoing transmission interval (id, start, end).
    outgoing: Option<(TransmissionId, SimTime, SimTime)>,
    /// Active incoming transmission intervals (id, start, end).
    incoming: Vec<(TransmissionId, SimTime, SimTime)>,
    finish: SimTime,
}

impl NodeState {
    fn new() -> Self {
        NodeState {
            pc: 0,
            status: Status::Ready,
            posted: HashMap::new(),
            delivered: std::collections::HashSet::new(),
            buffered: HashMap::new(),
            outgoing: None,
            incoming: Vec::new(),
            finish: SimTime::ZERO,
        }
    }
}

#[derive(Debug)]
struct Transmission {
    src: NodeId,
    dst: NodeId,
    tag: Tag,
    kind: MsgKind,
    payload: Vec<u8>,
    links: Vec<DirectedLink>,
    /// Circuit mode: total end-to-end duration. Store-and-forward
    /// mode: the duration of ONE hop.
    duration_ns: u64,
    /// Next hop to acquire (store-and-forward); always 0 in circuit
    /// mode, where the whole path is acquired at once.
    hop_idx: usize,
    requested_at: SimTime,
    blocked_by_link: bool,
    blocked_by_nic: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    NodeReady(NodeId),
    TransmissionEnd(TransmissionId),
}

/// The simulator. Construct with programs and initial memories, then
/// call [`Simulator::run`].
pub struct Simulator {
    cfg: SimConfig,
    programs: Vec<Program>,
    memories: Vec<Vec<u8>>,
    trace_enabled: bool,
}

impl Simulator {
    /// Create a simulator for `cfg.num_nodes()` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `programs` or `memories` have the wrong length.
    pub fn new(cfg: SimConfig, programs: Vec<Program>, memories: Vec<Vec<u8>>) -> Self {
        assert_eq!(programs.len(), cfg.num_nodes(), "one program per node required");
        assert_eq!(memories.len(), cfg.num_nodes(), "one memory per node required");
        Simulator { cfg, programs, memories, trace_enabled: false }
    }

    /// Enable event tracing (records every transmission start/end).
    pub fn with_trace(mut self) -> Self {
        self.trace_enabled = true;
        self
    }

    /// Run to completion, returning timings, statistics and final
    /// memories, or an error describing the failure.
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        for (i, p) in self.programs.iter().enumerate() {
            p.validate(self.memories[i].len())
                .map_err(|reason| SimError::InvalidProgram { node: NodeId(i as u32), reason })?;
        }
        let mut rt = Runtime::new(&self.cfg, &self.programs, std::mem::take(&mut self.memories), self.trace_enabled);
        let out = rt.run(&self.programs);
        // Allow re-running: put memories back on failure paths too.
        match out {
            Ok(result) => {
                self.memories = result.memories.clone();
                Ok(result)
            }
            Err(e) => Err(e),
        }
    }
}

struct Runtime<'c> {
    cfg: &'c SimConfig,
    nodes: Vec<NodeState>,
    memories: Vec<Vec<u8>>,
    links: LinkTable,
    transmissions: HashMap<TransmissionId, Transmission>,
    /// Transmissions issued but not yet started, in issue order.
    pending: Vec<TransmissionId>,
    heap: BinaryHeap<Reverse<(SimTime, u64, EventKey)>>,
    seq: u64,
    next_tid: TransmissionId,
    barrier_entered: u64,
    stats: SimStats,
    trace: Vec<TraceEvent>,
    trace_enabled: bool,
}

/// Orderable event payload for the heap (derives Ord).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKey {
    NodeReady(u32),
    TransmissionEnd(u64),
}

impl From<Event> for EventKey {
    fn from(e: Event) -> EventKey {
        match e {
            Event::NodeReady(n) => EventKey::NodeReady(n.0),
            Event::TransmissionEnd(t) => EventKey::TransmissionEnd(t),
        }
    }
}

impl<'c> Runtime<'c> {
    fn new(cfg: &'c SimConfig, programs: &[Program], memories: Vec<Vec<u8>>, trace_enabled: bool) -> Self {
        let n = programs.len();
        Runtime {
            cfg,
            nodes: (0..n).map(|_| NodeState::new()).collect(),
            memories,
            links: LinkTable::new(),
            transmissions: HashMap::new(),
            pending: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            next_tid: 1,
            barrier_entered: 0,
            stats: SimStats::default(),
            trace: Vec::new(),
            trace_enabled,
        }
    }

    fn push(&mut self, at: SimTime, ev: Event) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, ev.into())));
    }

    fn run(&mut self, programs: &[Program]) -> Result<SimResult, SimError> {
        for i in 0..self.nodes.len() {
            self.push(SimTime::ZERO, Event::NodeReady(NodeId(i as u32)));
        }
        while let Some(Reverse((t, _, key))) = self.heap.pop() {
            match key {
                EventKey::NodeReady(n) => self.step_node(NodeId(n), t, programs)?,
                EventKey::TransmissionEnd(id) => self.finish_transmission(id, t)?,
            }
        }
        // All events drained: every node must be Done.
        let stuck: Vec<(NodeId, String)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.status != Status::Done)
            .map(|(i, s)| {
                let reason = match &s.status {
                    Status::Waiting(src, tag) => format!("waiting for ({src}, {tag})"),
                    Status::InBarrier => "in barrier".to_string(),
                    Status::Sending(id) => format!("sending #{id}"),
                    other => format!("{other:?}"),
                };
                (NodeId(i as u32), reason)
            })
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock { stuck, forced_drops: self.stats.forced_drops });
        }
        let finish_time = self.nodes.iter().map(|s| s.finish).max().unwrap_or(SimTime::ZERO);
        Ok(SimResult {
            finish_time,
            node_finish: self.nodes.iter().map(|s| s.finish).collect(),
            memories: std::mem::take(&mut self.memories),
            stats: std::mem::take(&mut self.stats),
            trace: std::mem::take(&mut self.trace),
        })
    }

    /// Execute ops at node `x` starting at time `t` until it blocks,
    /// yields, or finishes.
    fn step_node(&mut self, x: NodeId, t: SimTime, programs: &[Program]) -> Result<(), SimError> {
        let xi = x.index();
        if self.nodes[xi].status == Status::Done {
            return Ok(()); // stale wake-up after completion
        }
        self.nodes[xi].status = Status::Ready;
        loop {
            let pc = self.nodes[xi].pc;
            let Some(op) = programs[xi].ops.get(pc) else {
                self.nodes[xi].status = Status::Done;
                self.nodes[xi].finish = t;
                return Ok(());
            };
            match op.clone() {
                Op::PostRecv { src, tag, into } => {
                    self.nodes[xi].pc += 1;
                    if let Some(payload) = self.nodes[xi].buffered.remove(&(src, tag)) {
                        // Late post of a buffered UNFORCED message.
                        self.deliver_into(x, src, tag, &payload, into)?;
                    } else {
                        self.nodes[xi].posted.insert((src, tag), into);
                    }
                }
                Op::Send { dst, from, tag, kind } => {
                    assert_ne!(dst, x, "self-send is not modelled; use Permute/Compute");
                    self.nodes[xi].pc += 1;
                    let id = self.issue_transmission(x, dst, tag, kind, from, t);
                    self.nodes[xi].status = Status::Sending(id);
                    self.try_start_pending(t);
                    return Ok(());
                }
                Op::WaitRecv { src, tag } => {
                    if self.nodes[xi].delivered.contains(&(src, tag)) {
                        self.nodes[xi].pc += 1;
                    } else {
                        self.nodes[xi].status = Status::Waiting(src, tag);
                        return Ok(());
                    }
                }
                Op::Permute { perm, block_bytes } => {
                    self.nodes[xi].pc += 1;
                    let total = perm.len() * block_bytes;
                    apply_block_permutation(&mut self.memories[xi], &perm, block_bytes);
                    let dur = self.cfg.shuffle_ns(total);
                    self.push(t.plus_ns(dur), Event::NodeReady(x));
                    self.nodes[xi].status = Status::Ready;
                    return Ok(());
                }
                Op::Barrier => {
                    self.nodes[xi].pc += 1;
                    self.nodes[xi].status = Status::InBarrier;
                    self.barrier_entered += 1;
                    if self.barrier_entered == self.nodes.len() as u64 {
                        self.barrier_entered = 0;
                        self.stats.barriers += 1;
                        let release = t.plus_ns(self.cfg.barrier_ns());
                        if self.trace_enabled {
                            self.trace.push(TraceEvent::BarrierRelease { at: release });
                        }
                        for i in 0..self.nodes.len() {
                            self.push(release, Event::NodeReady(NodeId(i as u32)));
                        }
                    }
                    return Ok(());
                }
                Op::Compute { ns } => {
                    self.nodes[xi].pc += 1;
                    self.push(t.plus_ns(ns), Event::NodeReady(x));
                    return Ok(());
                }
                Op::Mark { label } => {
                    self.nodes[xi].pc += 1;
                    let entry = self.stats.marks.entry(label).or_insert(t);
                    if *entry < t {
                        *entry = t;
                    }
                }
            }
        }
    }

    fn issue_transmission(
        &mut self,
        src: NodeId,
        dst: NodeId,
        tag: Tag,
        kind: MsgKind,
        from: Range<usize>,
        t: SimTime,
    ) -> TransmissionId {
        let id = self.next_tid;
        self.next_tid += 1;
        let payload = self.memories[src.index()][from].to_vec();
        let path = ecube_path(src, dst);
        let links: Vec<DirectedLink> = path.links().collect();
        let hops = links.len() as u32;
        let mut duration_ns = match self.cfg.switching {
            SwitchingMode::Circuit => self.cfg.transmission_ns(payload.len(), hops),
            SwitchingMode::StoreAndForward => self.cfg.hop_ns(payload.len()),
        };
        if kind == MsgKind::Unforced && payload.len() > self.cfg.params.unforced_threshold {
            duration_ns += self.cfg.reserve_ack_ns(if self.cfg.switching == SwitchingMode::Circuit {
                hops
            } else {
                1
            });
            self.stats.reserve_handshakes += 1;
        }
        if self.cfg.jitter_frac > 0.0 {
            duration_ns = jitter(duration_ns, self.cfg.jitter_frac, self.cfg.seed, id);
        }
        self.transmissions.insert(
            id,
            Transmission {
                src,
                dst,
                tag,
                kind,
                payload,
                links,
                duration_ns,
                hop_idx: 0,
                requested_at: t,
                blocked_by_link: false,
                blocked_by_nic: false,
            },
        );
        self.pending.push(id);
        id
    }

    /// Attempt to start every pending transmission, in issue order.
    fn try_start_pending(&mut self, t: SimTime) {
        let mut i = 0;
        while i < self.pending.len() {
            let id = self.pending[i];
            if self.try_start(id, t) {
                self.pending.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Try to establish the next segment of transmission `id` at time
    /// `t`: the whole circuit in circuit mode, the next single hop in
    /// store-and-forward mode.
    fn try_start(&mut self, id: TransmissionId, t: SimTime) -> bool {
        let saf = self.cfg.switching == SwitchingMode::StoreAndForward;
        let (src, dst, links_free, first_hop, last_hop) = {
            let tr = &self.transmissions[&id];
            let segment: &[DirectedLink] = if saf {
                std::slice::from_ref(&tr.links[tr.hop_idx])
            } else {
                &tr.links
            };
            (
                tr.src,
                tr.dst,
                self.links.all_free(segment),
                tr.hop_idx == 0,
                !saf || tr.hop_idx + 1 == tr.links.len(),
            )
        };
        if !links_free {
            let tr = self.transmissions.get_mut(&id).unwrap();
            if !tr.blocked_by_link {
                tr.blocked_by_link = true;
                self.stats.edge_contention_events += 1;
            }
            return false;
        }
        // NIC concurrency window (Section 7.2): outgoing at `src` may
        // not overlap an incoming unless their starts are within the
        // window; symmetrically for the receiver's active outgoing.
        let window = self.cfg.concurrency_window_ns;
        let nic_conflict = {
            let incoming_conflict = first_hop
                && self.nodes[src.index()]
                    .incoming
                    .iter()
                    .any(|&(_, start, end)| end > t && t.since(start) > window);
            let outgoing_conflict = last_hop
                && match self.nodes[dst.index()].outgoing {
                    Some((_, start, end)) => end > t && t.since(start) > window,
                    None => false,
                };
            incoming_conflict || outgoing_conflict
        };
        if nic_conflict {
            let tr = self.transmissions.get_mut(&id).unwrap();
            if !tr.blocked_by_nic {
                tr.blocked_by_nic = true;
                self.stats.nic_serialization_events += 1;
            }
            return false;
        }
        // Start: hold the segment for its duration.
        let (end, bytes, segment, tag) = {
            let tr = self.transmissions.get_mut(&id).unwrap();
            let end = t.plus_ns(tr.duration_ns);
            let segment: Vec<DirectedLink> = if saf {
                vec![tr.links[tr.hop_idx]]
            } else {
                tr.links.clone()
            };
            (end, tr.payload.len(), segment, tr.tag)
        };
        self.links.acquire(&segment, id);
        if first_hop {
            self.nodes[src.index()].outgoing = Some((id, t, end));
        }
        if last_hop {
            self.nodes[dst.index()].incoming.push((id, t, end));
        }
        let tr = &self.transmissions[&id];
        if first_hop {
            self.stats.transmissions += 1;
            self.stats.bytes_moved += bytes as u64;
        }
        self.stats.link_crossings += segment.len() as u64;
        let wait = t.since(tr.requested_at);
        if tr.blocked_by_link {
            self.stats.edge_contention_wait_ns += wait;
        } else if tr.blocked_by_nic {
            self.stats.nic_serialization_wait_ns += wait;
        }
        if first_hop && self.trace_enabled {
            self.trace.push(TraceEvent::TransmissionStart { src, dst, tag, bytes, at: t });
        }
        self.push(end, Event::TransmissionEnd(id));
        true
    }

    fn finish_transmission(&mut self, id: TransmissionId, t: SimTime) -> Result<(), SimError> {
        if self.cfg.switching == SwitchingMode::StoreAndForward {
            // Release the completed hop; advance or deliver.
            let (done, was_first) = {
                let tr = self.transmissions.get_mut(&id).unwrap();
                let hop = tr.links[tr.hop_idx];
                let was_first = tr.hop_idx == 0;
                tr.hop_idx += 1;
                let done = tr.hop_idx == tr.links.len();
                self.links.release(std::slice::from_ref(&hop), id);
                (done, was_first)
            };
            if was_first {
                // The sender's buffer is free once the message is
                // stored at the first intermediate node.
                let src = self.transmissions[&id].src;
                self.nodes[src.index()].outgoing = None;
                self.push(t, Event::NodeReady(src));
            }
            if !done {
                // Queue the next hop (clear one-shot blocking flags so
                // each hop's wait is accounted once).
                {
                    let tr = self.transmissions.get_mut(&id).unwrap();
                    tr.requested_at = t;
                    tr.blocked_by_link = false;
                    tr.blocked_by_nic = false;
                }
                self.pending.push(id);
                self.try_start_pending(t);
                return Ok(());
            }
            // Fall through to delivery below.
            let tr = self.transmissions.remove(&id).expect("unknown transmission");
            let dst_state = &mut self.nodes[tr.dst.index()];
            dst_state.incoming.retain(|&(iid, _, _)| iid != id);
            return self.deliver_and_wake(tr, t, false);
        }
        let tr = self.transmissions.remove(&id).expect("unknown transmission");
        self.links.release(&tr.links, id);
        let src_state = &mut self.nodes[tr.src.index()];
        debug_assert!(matches!(src_state.outgoing, Some((oid, _, _)) if oid == id));
        src_state.outgoing = None;
        let dst_state = &mut self.nodes[tr.dst.index()];
        dst_state.incoming.retain(|&(iid, _, _)| iid != id);

        self.deliver_and_wake(tr, t, true)
    }

    /// Deliver a completed transmission's payload and wake the
    /// affected nodes. `wake_sender` is false in store-and-forward
    /// mode, where the sender was already released after hop 0.
    fn deliver_and_wake(&mut self, tr: Transmission, t: SimTime, wake_sender: bool) -> Result<(), SimError> {
        if self.trace_enabled {
            self.trace.push(TraceEvent::TransmissionEnd { src: tr.src, dst: tr.dst, tag: tr.tag, at: t });
        }

        // Deliver the payload.
        let key = (tr.src, tr.tag);
        if let Some(into) = self.nodes[tr.dst.index()].posted.remove(&key) {
            self.deliver_into(tr.dst, tr.src, tr.tag, &tr.payload, into)?;
            if self.nodes[tr.dst.index()].status == Status::Waiting(tr.src, tr.tag) {
                self.push(t, Event::NodeReady(tr.dst));
            }
        } else {
            match tr.kind {
                MsgKind::Forced => {
                    self.stats.forced_drops += 1;
                    if self.trace_enabled {
                        self.trace.push(TraceEvent::ForcedDropped {
                            src: tr.src,
                            dst: tr.dst,
                            tag: tr.tag,
                            at: t,
                        });
                    }
                }
                MsgKind::Unforced => {
                    self.nodes[tr.dst.index()].buffered.insert(key, tr.payload.clone());
                }
            }
        }

        if wake_sender {
            // The blocking send completes: wake the sender.
            self.push(t, Event::NodeReady(tr.src));
        }
        // Freed links / NIC units may unblock pending circuits.
        self.try_start_pending(t);
        Ok(())
    }

    fn deliver_into(
        &mut self,
        node: NodeId,
        src: NodeId,
        tag: Tag,
        payload: &[u8],
        into: Range<usize>,
    ) -> Result<(), SimError> {
        if into.len() != payload.len() {
            return Err(SimError::SizeMismatch {
                node,
                tag,
                posted: into.len(),
                sent: payload.len(),
            });
        }
        self.memories[node.index()][into].copy_from_slice(payload);
        self.nodes[node.index()].delivered.insert((src, tag));
        Ok(())
    }
}

/// Apply a block permutation in place: block `i` moves to `perm[i]`.
fn apply_block_permutation(memory: &mut [u8], perm: &[u32], block_bytes: usize) {
    if block_bytes == 0 || perm.is_empty() {
        return;
    }
    let total = perm.len() * block_bytes;
    let mut scratch = vec![0u8; total];
    for (i, &p) in perm.iter().enumerate() {
        let srcr = i * block_bytes..(i + 1) * block_bytes;
        let dstr = p as usize * block_bytes..(p as usize + 1) * block_bytes;
        scratch[dstr].copy_from_slice(&memory[srcr]);
    }
    memory[..total].copy_from_slice(&scratch);
}

/// Deterministic multiplicative jitter in `[1 - frac, 1 + frac]`,
/// derived from (seed, transmission id) by splitmix64.
fn jitter(base_ns: u64, frac: f64, seed: u64, id: TransmissionId) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Map to [-1, 1).
    let u = (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
    let scaled = base_ns as f64 * (1.0 + frac * u);
    scaled.round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_permutation_applies() {
        let mut mem: Vec<u8> = (0..12).collect();
        // 3 blocks of 4 bytes; rotate blocks right: i -> (i+1) % 3.
        apply_block_permutation(&mut mem, &[1, 2, 0], 4);
        assert_eq!(mem, vec![8, 9, 10, 11, 0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn identity_permutation_is_noop() {
        let mut mem: Vec<u8> = (0..16).collect();
        let before = mem.clone();
        apply_block_permutation(&mut mem, &[0, 1, 2, 3], 4);
        assert_eq!(mem, before);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for id in 1..500u64 {
            let a = jitter(1_000_000, 0.05, 42, id);
            let b = jitter(1_000_000, 0.05, 42, id);
            assert_eq!(a, b);
            assert!((950_000..=1_050_000).contains(&a), "{a}");
        }
        // Different seeds give different streams.
        assert_ne!(jitter(1_000_000, 0.05, 1, 7), jitter(1_000_000, 0.05, 2, 7));
    }
}
