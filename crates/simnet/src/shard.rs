//! Deterministic subcube sharding for the simulation engine.
//!
//! At d11–d12 (2048–4096 nodes) a single event loop over the whole
//! cube is the bottleneck of every sweep: the working set (node
//! memories, the flat slot table, the link occupancy table, the
//! calendar ring) is tens to hundreds of megabytes and every event
//! touches a pseudo-random corner of it. Sharding splits one run into
//! `2^k` *subcube shards* so that, for the phases that allow it, each
//! shard advances on state that fits in cache — and, on a multicore
//! host, on its own worker thread.
//!
//! # Partitioning rule
//!
//! A [`ShardPlan`] names `k` node-address bits (`dims`); node `x`
//! belongs to the shard selected by the values of those bits. Each
//! shard then owns a subcube of `2^(d-k)` nodes — contiguous when the
//! plan uses the top `k` bits, an interleaved coset otherwise — and
//! e-cube routes between two nodes of the same shard stay inside the
//! shard as long as the route's mask `src ^ dst` avoids the plan's
//! bits (e-cube correction never sets a bit outside `src ^ dst`).
//!
//! The axis is chosen *per phase*: at every barrier the driver knows
//! the union of the phase's send masks (precomputed at compile time),
//! and any `k` address bits outside that union are a valid shard axis.
//! A multiphase exchange that routes its top bits in phase 1 and its
//! low bits in phase 2 is therefore windowable in *both* phases —
//! phase 1 shards on low bits, phase 2 on top bits. Top bits are
//! preferred among the free ones, so whenever the classic
//! top-`k`-bit layout works it is the one used.
//!
//! # Window semantics
//!
//! The engine's programs are barrier-phased, and at every barrier
//! boundary the system is *quiescent*: no live circuits, no pending
//! retries, no in-flight payloads. The driver exploits exactly that
//! lookahead. It runs the master engine to each barrier boundary,
//! folds the current phase's precomputed send-mask union over the
//! nodes, and picks the phase's execution mode:
//!
//! * **Windowed** — at least one address bit is free of the phase's
//!   send masks (and no UNFORCED payload is buffered across the
//!   boundary): the cube is split into up to `2^k` per-shard runtimes
//!   (as many as the free bits allow, capped by the configured
//!   count) —
//!   shard-local nodes, memories, a packed shard-local slot table and
//!   a private `Scheduler` — which drain the whole phase concurrently
//!   (vendored rayon workers) and merge back in shard-index order at
//!   the barrier.
//! * **Global** — the phase's sends touch every candidate axis: the
//!   phase runs on the ordinary sequential engine, bit-for-bit. The
//!   driver counts these in `shard_barrier_stalls` /
//!   `shard_cross_events` (cross sends under the default top-bit
//!   layout).
//!
//! The barrier itself is coordinated by the driver: shards report how
//! many nodes entered and the latest entry time; the release is
//! `max(entry) + barrier_ns`, with release wakes seeded in node order
//! — exactly what the sequential barrier handler does.
//!
//! # Determinism guarantee
//!
//! Sharded runs are **bit-identical** to `shards: 1` (pinned by the
//! determinism-snapshot suite and `shard_differential.rs`). The
//! argument, in outline:
//!
//! * Within a windowed phase, events of different shards touch
//!   disjoint state, and same-instant events of *one* shard keep their
//!   relative `(time, seq)` order under the per-shard scheduler — so
//!   the merged execution equals the sequential interleaving's
//!   projection, instant by instant. The argument never uses
//!   contiguity, so it covers interleaved-coset shards unchanged.
//! * The one shared structure that could leak ordering across shards
//!   is the NIC-lapse queue: a lapse wake-up drained by a *foreign*
//!   handler in the sequential run can retry a blocked transmission at
//!   an earlier within-instant position than the shard-local run
//!   would. The start *time* is unchanged (every lapse expiry
//!   coincides with a same-shard transmission end whose handler
//!   re-scans), so divergence needs a same-instant seq-order collision
//!   — possible only when the window actually pushed a lapse wake-up.
//! * The engine therefore counts lapse pushes per window. Zero pushes
//!   (the overwhelmingly common case: synchronized exchange phases
//!   align NIC starts within the concurrency window) proves the
//!   window exact. If any shard pushed one, the driver **discards the
//!   entire sharded attempt and reruns the run sequentially** from a
//!   pristine copy of the inputs — slower, never wrong.
//!
//! The pristine copy is the fallback's insurance premium: one flat
//! snapshot of all node memories per run (pooled, but still a full
//! memcpy — tens of ms at d11+). A workload that *knows* it is
//! pairwise-synchronized can waive it with
//! [`SimConfig::with_declared_sync`](crate::SimConfig::with_declared_sync):
//! the snapshot is skipped, and a window that does push a lapse
//! wake-up surfaces as
//! [`SimError::SyncDeclarationViolated`](crate::SimError::SyncDeclarationViolated)
//! instead of falling back — a typed, reproducible error, never a
//! silently divergent result.
//!
//! Sharding engages only where that argument holds: circuit
//! switching, zero jitter, no network conditions, tracing off (see
//! [`eligible`]). Everything else — store-and-forward, jittered or
//! conditioned runs — takes the sequential path unchanged. Two
//! documented blemishes remain on *failed* runs: deadlock reports may
//! name shard-local transmission ids, and when several shards fail in
//! the same window the first error in shard order (not simulated-time
//! order) is reported.
//!
//! # Telemetry
//!
//! [`SimStats`](crate::SimStats) reports `shard_windows` (phases run
//! windowed), `shard_barrier_stalls` (phases forced global),
//! `shard_cross_events` (cross-shard sends in those phases) and
//! `shard_peak_pending` (largest per-shard event-queue peak). The
//! `sched_*` telemetry keeps describing the queues actually used, so
//! it legitimately differs from a sequential run; all simulation
//! observables (times, memories, event counters, marks) do not.

use crate::config::{SimConfig, SwitchingMode};

/// The shard layout of one windowed phase: how many shards, and which
/// node-address bits select a node's shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of shards (`2^k`).
    pub count: u32,
    /// Bitmask over node-address bits: the values of these `k` bits
    /// form the shard index (in ascending bit order).
    pub dims: u32,
}

impl ShardPlan {
    /// The default layout for `shards` (a power of two, validated by
    /// [`SimConfig::validate`]) on a `d`-cube: the top `k` address
    /// bits, giving contiguous shards.
    pub fn new(d: u32, shards: u32) -> Self {
        let k = shards.trailing_zeros();
        debug_assert!(shards.is_power_of_two() && k <= d);
        let dims = if k == 0 { 0 } else { ((shards - 1) << (d - k)) & cube_mask(d) };
        ShardPlan { count: shards, dims }
    }

    /// A layout whose axis avoids every bit of `used`: the top free
    /// bits of the `d`-cube. `shards` is an upper bound — when fewer
    /// bits are free than the configured `k`, the phase still windows
    /// on as many shards as its traffic allows (`2^free`); `None` only
    /// when no bit is free at all (every axis would be crossed, so the
    /// phase must run globally). Preferring top bits keeps the classic
    /// contiguous layout whenever it is valid.
    pub fn avoiding(d: u32, shards: u32, used: u32) -> Option<Self> {
        debug_assert!(shards.is_power_of_two() && shards.trailing_zeros() <= d);
        let mut free = cube_mask(d) & !used;
        let k = shards.trailing_zeros().min(free.count_ones());
        if k == 0 {
            return None;
        }
        // Drop low free bits until exactly k remain.
        while free.count_ones() > k {
            free &= free - 1;
        }
        Some(ShardPlan { count: 1 << k, dims: free })
    }

    /// Shard owning node `x`: the plan's address bits of `x`, packed
    /// in ascending bit order.
    #[inline]
    pub fn shard_of(&self, x: u32) -> u32 {
        let mut out = 0;
        let mut next = 0;
        let mut dims = self.dims;
        while dims != 0 {
            let b = dims.trailing_zeros();
            out |= ((x >> b) & 1) << next;
            next += 1;
            dims &= dims - 1;
        }
        out
    }

    /// Number of nodes per shard on a `d`-cube.
    pub fn nodes_per_shard(&self, d: u32) -> usize {
        (1usize << d) / self.count as usize
    }

    /// Fill `out` with shard `s`'s nodes in ascending address order.
    pub fn nodes_of(&self, d: u32, s: u32, out: &mut Vec<u32>) {
        out.clear();
        let free = cube_mask(d) & !self.dims;
        let base = deposit(s, self.dims);
        let per = self.nodes_per_shard(d) as u32;
        for j in 0..per {
            out.push(base | deposit(j, free));
        }
    }
}

/// All `d` address bits of a `d`-cube.
#[inline]
fn cube_mask(d: u32) -> u32 {
    if d >= 32 {
        u32::MAX
    } else {
        (1u32 << d) - 1
    }
}

/// Scatter the low bits of `v` onto the set bits of `mask` (software
/// PDEP), preserving order — monotone in `v` for a fixed mask.
#[inline]
fn deposit(v: u32, mask: u32) -> u32 {
    let mut out = 0;
    let mut next = 0;
    let mut m = mask;
    while m != 0 {
        let b = m.trailing_zeros();
        out |= ((v >> next) & 1) << b;
        next += 1;
        m &= m - 1;
    }
    out
}

/// Execution mode of one barrier-delimited phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PhaseMode {
    /// Some `k` address bits avoid every send mask of the phase:
    /// shards advance concurrently under the carried plan.
    Windowed(ShardPlan),
    /// The phase's sends cover every candidate axis (or a buffered
    /// payload carries over): the phase runs on the sequential engine.
    Global {
        /// Sends crossing shard boundaries under the default top-bit
        /// layout.
        cross_sends: u64,
    },
}

/// Whether a run may take the sharded driver at all. The determinism
/// argument above needs circuit switching (quiescent barriers), zero
/// jitter (transmission ids are per-shard) and an unconditioned
/// network (no background injections, no global speed table); traced
/// runs stay sequential so trace order needs no merge step.
/// Multi-tenant runs ([`SimConfig::jobs`] non-empty) also stay
/// sequential: shard windows run per-subcube slices whose
/// [`crate::stats::JobStats`] cannot be merged across windows, and
/// staggered job starts break the quiescent-barrier argument.
pub(crate) fn eligible(cfg: &SimConfig, trace: bool) -> bool {
    cfg.shards > 1
        && cfg.switching == SwitchingMode::Circuit
        && cfg.jitter_frac == 0.0
        && cfg.netcond.is_none()
        && cfg.jobs.is_empty()
        && !trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netcond::NetCondition;

    #[test]
    fn plan_partitions_contiguous_subcubes() {
        let plan = ShardPlan::new(5, 4);
        assert_eq!(plan.count, 4);
        assert_eq!(plan.dims, 0b11000);
        assert_eq!(plan.nodes_per_shard(5), 8);
        // Top-2-bit mask: nodes 0..8 -> shard 0, 8..16 -> shard 1, ...
        for x in 0u32..32 {
            assert_eq!(plan.shard_of(x), x / 8);
        }
    }

    #[test]
    fn single_shard_plan_covers_whole_cube() {
        let plan = ShardPlan::new(7, 1);
        assert_eq!(plan.nodes_per_shard(7), 128);
        assert!((0u32..128).all(|x| plan.shard_of(x) == 0));
    }

    #[test]
    fn avoiding_picks_top_free_bits() {
        // Phase uses the top 2 bits of a d5 cube: the axis must come
        // from the low 3, and prefers the highest of them.
        let plan = ShardPlan::avoiding(5, 4, 0b11000).unwrap();
        assert_eq!(plan.dims, 0b00110);
        // Phase uses the low 3 bits: the classic top-bit layout wins.
        let plan = ShardPlan::avoiding(5, 4, 0b00111).unwrap();
        assert_eq!(plan, ShardPlan::new(5, 4));
        // One bit free but two wanted: window on 2 shards, not 4.
        let plan = ShardPlan::avoiding(5, 4, 0b01111).unwrap();
        assert_eq!(plan, ShardPlan { count: 2, dims: 0b10000 });
        // Every axis crossed: the phase must run globally.
        assert!(ShardPlan::avoiding(5, 4, 0b11111).is_none());
    }

    #[test]
    fn interleaved_plan_partitions_cosets() {
        // Axis on bits {1, 2} of a d4 cube: shards are strided cosets.
        let plan = ShardPlan { count: 4, dims: 0b0110 };
        let mut seen = vec![0u32; 4];
        for x in 0u32..16 {
            assert_eq!(plan.shard_of(x), (x >> 1) & 0b11);
            seen[plan.shard_of(x) as usize] += 1;
        }
        assert_eq!(seen, vec![4; 4]);
        // nodes_of enumerates each coset in ascending order.
        let mut nodes = Vec::new();
        let mut all = Vec::new();
        for s in 0..4 {
            plan.nodes_of(4, s, &mut nodes);
            assert_eq!(nodes.len(), 4);
            assert!(nodes.windows(2).all(|w| w[0] < w[1]));
            assert!(nodes.iter().all(|&x| plan.shard_of(x) == s));
            all.extend_from_slice(&nodes);
        }
        all.sort_unstable();
        assert_eq!(all, (0u32..16).collect::<Vec<_>>());
    }

    #[test]
    fn intra_shard_ecube_routes_stay_in_shard() {
        // e-cube routing corrects bits of src ^ dst only, so every
        // intermediate node shares the bits outside the route mask —
        // for contiguous and interleaved plans alike.
        for plan in [ShardPlan::new(6, 8), ShardPlan { count: 8, dims: 0b000111 }] {
            for src in 0u32..64 {
                for dst in 0u32..64 {
                    if src == dst || plan.shard_of(src) != plan.shard_of(dst) {
                        continue;
                    }
                    if (src ^ dst) & plan.dims != 0 {
                        continue; // route touches the axis: not windowable
                    }
                    let path = mce_hypercube::routing::ecube_path(
                        mce_hypercube::NodeId(src),
                        mce_hypercube::NodeId(dst),
                    );
                    for link in path.links() {
                        assert_eq!(plan.shard_of(link.from.0), plan.shard_of(src));
                        assert_eq!(plan.shard_of(link.to.0), plan.shard_of(src));
                    }
                }
            }
        }
    }

    #[test]
    fn eligibility_gates_on_the_proven_configuration() {
        let base = SimConfig::ipsc860(4).with_shards(4);
        assert!(eligible(&base, false));
        assert!(!eligible(&base, true), "traced runs stay sequential");
        assert!(!eligible(&SimConfig::ipsc860(4), false), "shards: 1");
        assert!(!eligible(&base.clone().with_store_and_forward(), false));
        assert!(!eligible(&base.clone().with_jitter(0.1, 7), false));
        assert!(
            !eligible(&base.clone().with_jobs(vec![crate::traffic::JobSpec::default()]), false),
            "multi-tenant runs stay sequential"
        );
        let mut conditioned = base;
        conditioned.netcond = Some(NetCondition::default());
        assert!(!eligible(&conditioned, false));
    }
}
