//! Per-batch aggregation over replicate runs.
//!
//! Sweeps in this repository routinely run the same workload many
//! times — jitter seeds, conditioned-network severities, arena-reuse
//! replicates — and every consumer used to hand-roll its own
//! mean/min/max folding. [`aggregate`] folds a slice of batch results
//! into one [`RunAggregate`]: a [`MetricSummary`]
//! (mean/stddev/min/max/n) per metric of interest, computed over the
//! *successful* runs, with the failure count reported alongside.
//! Summaries are deterministic: samples are folded in result order.

use crate::engine::{SimError, SimResult};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Five-number summary of one metric over the successful runs of a
/// batch. `stddev` is the sample standard deviation (`n - 1`
/// denominator), `0.0` for fewer than two samples; all fields are
/// `0.0` for an empty sample set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Number of samples folded.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl MetricSummary {
    /// Summarize a sample slice.
    pub fn from_samples(samples: &[f64]) -> MetricSummary {
        let n = samples.len();
        if n == 0 {
            return MetricSummary::default();
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        MetricSummary { n, mean, stddev, min, max }
    }

    /// Half-width of the `mean ± stddev/√n` band (standard error).
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev / (self.n as f64).sqrt()
        }
    }
}

/// Aggregated metrics of one batch (or one replicate range of a
/// batch): summaries over the successful runs plus the failure count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunAggregate {
    /// Total results folded (successes + failures).
    pub runs: usize,
    /// Results that were `Err` (excluded from every summary).
    pub failures: usize,
    /// Finish time, µs.
    pub finish_us: MetricSummary,
    /// Transmissions started by the algorithm.
    pub transmissions: MetricSummary,
    /// Edge-contention events.
    pub edge_contention_events: MetricSummary,
    /// Edge-contention wait, µs.
    pub edge_contention_wait_us: MetricSummary,
    /// NIC serialization events.
    pub nic_serialization_events: MetricSummary,
    /// NIC serialization wait, µs.
    pub nic_serialization_wait_us: MetricSummary,
    /// FORCED messages dropped.
    pub forced_drops: MetricSummary,
    /// Background-traffic transmissions (conditioned runs).
    pub background_transmissions: MetricSummary,
}

/// Fold a slice of batch results (as returned by
/// [`crate::batch::SimBatch::run`]) into per-metric summaries.
pub fn aggregate(results: &[Result<SimResult, SimError>]) -> RunAggregate {
    let ok: Vec<&SimResult> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    let col = |f: &dyn Fn(&SimResult) -> f64| -> MetricSummary {
        let samples: Vec<f64> = ok.iter().map(|r| f(r)).collect();
        MetricSummary::from_samples(&samples)
    };
    RunAggregate {
        runs: results.len(),
        failures: results.len() - ok.len(),
        finish_us: col(&|r| r.finish_time.as_us()),
        transmissions: col(&|r| r.stats.transmissions as f64),
        edge_contention_events: col(&|r| r.stats.edge_contention_events as f64),
        edge_contention_wait_us: col(&|r| r.stats.edge_contention_wait_ns as f64 / 1000.0),
        nic_serialization_events: col(&|r| r.stats.nic_serialization_events as f64),
        nic_serialization_wait_us: col(&|r| r.stats.nic_serialization_wait_ns as f64 / 1000.0),
        forced_drops: col(&|r| r.stats.forced_drops as f64),
        background_transmissions: col(&|r| r.stats.background_transmissions as f64),
    }
}

/// [`aggregate`] over one result-index range, as handed back by the
/// sweep builders ([`crate::batch::SimBatch::seed_sweep`] and
/// friends).
pub fn aggregate_range(
    results: &[Result<SimResult, SimError>],
    range: Range<usize>,
) -> RunAggregate {
    aggregate(&results[range])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let s = MetricSummary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set: sqrt(32/7).
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.stderr() - s.stddev / 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_summaries() {
        assert_eq!(MetricSummary::from_samples(&[]), MetricSummary::default());
        let one = MetricSummary::from_samples(&[3.5]);
        assert_eq!((one.n, one.mean, one.stddev, one.min, one.max), (1, 3.5, 0.0, 3.5, 3.5));
    }
}
