//! Per-batch aggregation over replicate runs.
//!
//! Sweeps in this repository routinely run the same workload many
//! times — jitter seeds, conditioned-network severities, arena-reuse
//! replicates — and every consumer used to hand-roll its own
//! mean/min/max folding. [`aggregate`] folds a slice of batch results
//! into one [`RunAggregate`]: a [`MetricSummary`]
//! (mean/stddev/min/max/n) per metric of interest, computed over the
//! *successful* runs, with the failure count reported alongside.
//! Summaries are deterministic: samples are folded in result order.

use crate::engine::{SimError, SimResult};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Five-number summary of one metric over the successful runs of a
/// batch. `stddev` is the sample standard deviation (`n - 1`
/// denominator), `0.0` for fewer than two samples; all fields are
/// `0.0` for an empty sample set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Number of samples folded.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl MetricSummary {
    /// Summarize a sample slice. Internally folds through
    /// [`MetricAccumulator`] (Welford's single-pass recurrence), so
    /// large-mean/small-variance replicate sets — exactly what jitter
    /// sweeps produce, means in the tens of milliseconds with
    /// microsecond spreads — keep full precision, unlike the textbook
    /// `E[x²] - E[x]²` form whose subtraction cancels catastrophically
    /// there.
    pub fn from_samples(samples: &[f64]) -> MetricSummary {
        let mut acc = MetricAccumulator::default();
        for &s in samples {
            acc.push(s);
        }
        acc.finish()
    }

    /// Half-width of the `mean ± stddev/√n` band (standard error).
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev / (self.n as f64).sqrt()
        }
    }
}

/// Streaming Welford accumulator behind [`MetricSummary`]: one pass,
/// no sample buffer, numerically stable for any mean/variance ratio
/// (the running `m2` accumulates *centered* squares, so no
/// large-magnitude subtraction ever happens).
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricAccumulator {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MetricAccumulator {
    /// Fold in one sample.
    pub fn push(&mut self, sample: f64) {
        if self.n == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.n += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (sample - self.mean);
    }

    /// The summary of everything pushed so far.
    pub fn finish(&self) -> MetricSummary {
        if self.n == 0 {
            return MetricSummary::default();
        }
        let stddev = if self.n < 2 { 0.0 } else { (self.m2 / (self.n - 1) as f64).sqrt() };
        MetricSummary { n: self.n, mean: self.mean, stddev, min: self.min, max: self.max }
    }
}

/// Aggregated metrics of one batch (or one replicate range of a
/// batch): summaries over the successful runs plus the failure count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunAggregate {
    /// Total results folded (successes + failures).
    pub runs: usize,
    /// Results that were `Err` (excluded from every summary).
    pub failures: usize,
    /// Finish time, µs.
    pub finish_us: MetricSummary,
    /// Transmissions started by the algorithm.
    pub transmissions: MetricSummary,
    /// Edge-contention events.
    pub edge_contention_events: MetricSummary,
    /// Edge-contention wait, µs.
    pub edge_contention_wait_us: MetricSummary,
    /// NIC serialization events.
    pub nic_serialization_events: MetricSummary,
    /// NIC serialization wait, µs.
    pub nic_serialization_wait_us: MetricSummary,
    /// FORCED messages dropped.
    pub forced_drops: MetricSummary,
    /// Background-traffic transmissions (conditioned runs).
    pub background_transmissions: MetricSummary,
    /// Scheduler queue pressure: peak simultaneously-pending events
    /// (see [`crate::sched`]); sweeps report it alongside finish times
    /// so queue load is visible per cell.
    pub sched_peak_pending: MetricSummary,
    /// Scheduler far-future overflow spills (events that missed the
    /// calendar ring's window).
    pub sched_overflow_spills: MetricSummary,
    /// Sharded-driver phases that ran windowed (see [`crate::shard`]);
    /// all-zero for sequential (`shards: 1`) or ineligible runs.
    pub shard_windows: MetricSummary,
    /// Sharded-driver phases forced to run globally serialized by
    /// cross-shard traffic (window-barrier stalls).
    pub shard_barrier_stalls: MetricSummary,
    /// Cross-shard sends seen in those globally serialized phases.
    pub shard_cross_events: MetricSummary,
    /// Flow-control retransmissions (see [`crate::traffic`]); all-zero
    /// without a link policy.
    pub retransmissions: MetricSummary,
    /// Transmissions dropped/refused by the link policy.
    pub flow_drops: MetricSummary,
    /// Trace events evicted from the bounded capture ring (see
    /// [`crate::trace`]); all-zero for untraced cells, and a nonzero
    /// mean flags sweeps whose trace capacity is too small for the
    /// workload.
    pub trace_events_dropped: MetricSummary,
    /// Host-side time each run spent obtaining its compiled program
    /// set, µs (see [`crate::stats::SimStats::compile_ns`]): near-zero
    /// means on cache hits, one cold spike per distinct set otherwise.
    pub compile_us: MetricSummary,
    /// Runs whose compilation came from their arena's own memo (the
    /// mean is the local hit *rate* of the batch).
    pub compile_local_hits: MetricSummary,
    /// Runs served by the process-wide shared compile cache.
    pub compile_shared_hits: MetricSummary,
    /// Runs that actually compiled. `mean * n` = distinct compilations
    /// of the batch; a sweep over one shared program set totals exactly
    /// 1 regardless of worker count.
    pub compile_misses: MetricSummary,
    /// Per-run worst job slowdown (`max_j makespan_j / min_k
    /// makespan_k`; see [`crate::stats::SimStats::job_slowdowns`]),
    /// folded over multi-tenant runs only — single-tenant runs carry no
    /// job stats and are excluded from the sample.
    pub job_slowdown_max: MetricSummary,
    /// Per-run best job slowdown (`1.0` unless every job's makespan is
    /// zero); multi-tenant runs only.
    pub job_slowdown_min: MetricSummary,
    /// Jain fairness index over per-job throughput (see
    /// [`crate::stats::SimStats::jain_fairness`]); multi-tenant runs
    /// only.
    pub jain_fairness: MetricSummary,
}

/// Fold a slice of batch results (as returned by
/// [`crate::batch::SimBatch::run`]) into per-metric summaries.
pub fn aggregate(results: &[Result<SimResult, SimError>]) -> RunAggregate {
    let ok: Vec<&SimResult> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    let col = |f: &dyn Fn(&SimResult) -> f64| -> MetricSummary {
        let mut acc = MetricAccumulator::default();
        for r in &ok {
            acc.push(f(r));
        }
        acc.finish()
    };
    // Job-level metrics sample only the multi-tenant runs: a `None`
    // from the projection keeps single-tenant runs out of the fold
    // instead of polluting the fairness summaries with trivial 1.0s.
    let job_col = |f: &dyn Fn(&SimResult) -> Option<f64>| -> MetricSummary {
        let mut acc = MetricAccumulator::default();
        for r in &ok {
            if let Some(x) = f(r) {
                acc.push(x);
            }
        }
        acc.finish()
    };
    RunAggregate {
        runs: results.len(),
        failures: results.len() - ok.len(),
        finish_us: col(&|r| r.finish_time.as_us()),
        transmissions: col(&|r| r.stats.transmissions as f64),
        edge_contention_events: col(&|r| r.stats.edge_contention_events as f64),
        edge_contention_wait_us: col(&|r| r.stats.edge_contention_wait_ns as f64 / 1000.0),
        nic_serialization_events: col(&|r| r.stats.nic_serialization_events as f64),
        nic_serialization_wait_us: col(&|r| r.stats.nic_serialization_wait_ns as f64 / 1000.0),
        forced_drops: col(&|r| r.stats.forced_drops as f64),
        background_transmissions: col(&|r| r.stats.background_transmissions as f64),
        sched_peak_pending: col(&|r| r.stats.sched_peak_pending as f64),
        sched_overflow_spills: col(&|r| r.stats.sched_overflow_spills as f64),
        shard_windows: col(&|r| r.stats.shard_windows as f64),
        shard_barrier_stalls: col(&|r| r.stats.shard_barrier_stalls as f64),
        shard_cross_events: col(&|r| r.stats.shard_cross_events as f64),
        retransmissions: col(&|r| r.stats.retransmissions as f64),
        flow_drops: col(&|r| r.stats.flow_drops as f64),
        trace_events_dropped: col(&|r| r.stats.trace_events_dropped as f64),
        compile_us: col(&|r| r.stats.compile_ns as f64 / 1000.0),
        compile_local_hits: col(&|r| r.stats.compile_local_hits as f64),
        compile_shared_hits: col(&|r| r.stats.compile_shared_hits as f64),
        compile_misses: col(&|r| r.stats.compile_misses as f64),
        job_slowdown_max: job_col(&|r| r.stats.job_slowdowns().into_iter().reduce(f64::max)),
        job_slowdown_min: job_col(&|r| r.stats.job_slowdowns().into_iter().reduce(f64::min)),
        jain_fairness: job_col(&|r| {
            if r.stats.jobs.is_empty() {
                None
            } else {
                Some(r.stats.jain_fairness())
            }
        }),
    }
}

/// [`aggregate`] over one result-index range, as handed back by the
/// sweep builders ([`crate::batch::SimBatch::seed_sweep`] and
/// friends).
pub fn aggregate_range(
    results: &[Result<SimResult, SimError>],
    range: Range<usize>,
) -> RunAggregate {
    aggregate(&results[range])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SimStats;
    use crate::time::SimTime;

    /// Shard telemetry flows through [`aggregate`] like any other
    /// metric: summarized over the successful replicates only, in
    /// result order.
    #[test]
    fn aggregate_summarizes_shard_telemetry() {
        let mk = |windows: u64, stalls: u64, cross: u64| {
            Ok(SimResult {
                finish_time: SimTime::from_us(1_000.0),
                node_finish: Vec::new(),
                memories: Vec::new(),
                trace: Vec::new(),
                stats: SimStats {
                    shard_windows: windows,
                    shard_barrier_stalls: stalls,
                    shard_cross_events: cross,
                    ..SimStats::default()
                },
            })
        };
        let results = vec![mk(2, 1, 64), mk(4, 3, 192), Err(SimError::AlreadyRan)];
        let agg = aggregate(&results);
        assert_eq!((agg.runs, agg.failures), (3, 1));
        assert_eq!(agg.shard_windows.n, 2);
        assert_eq!(
            (agg.shard_windows.mean, agg.shard_windows.min, agg.shard_windows.max),
            (3.0, 2.0, 4.0)
        );
        assert_eq!(agg.shard_barrier_stalls.mean, 2.0);
        assert_eq!((agg.shard_cross_events.min, agg.shard_cross_events.max), (64.0, 192.0));
    }

    /// Compile telemetry folds like any other column: a batch of one
    /// miss + cached reruns shows exactly one compilation and the hit
    /// rate of the rest.
    #[test]
    fn aggregate_summarizes_compile_telemetry() {
        let mk = |ns: u64, local: u64, shared: u64, miss: u64| {
            Ok(SimResult {
                finish_time: SimTime::from_us(1_000.0),
                node_finish: Vec::new(),
                memories: Vec::new(),
                trace: Vec::new(),
                stats: SimStats {
                    compile_ns: ns,
                    compile_local_hits: local,
                    compile_shared_hits: shared,
                    compile_misses: miss,
                    ..SimStats::default()
                },
            })
        };
        // One cold compile, one shared-cache hit, two local hits.
        let results =
            vec![mk(80_000, 0, 0, 1), mk(2_000, 0, 1, 0), mk(500, 1, 0, 0), mk(500, 1, 0, 0)];
        let agg = aggregate(&results);
        assert_eq!(agg.compile_us.n, 4);
        assert_eq!((agg.compile_us.min, agg.compile_us.max), (0.5, 80.0));
        assert_eq!(agg.compile_misses.mean * agg.compile_misses.n as f64, 1.0);
        assert_eq!(agg.compile_local_hits.mean, 0.5);
        assert_eq!(agg.compile_shared_hits.mean, 0.25);
    }

    /// Fairness summaries sample only the multi-tenant runs: the
    /// single-tenant replicate contributes nothing to them while still
    /// counting toward the plain metrics.
    #[test]
    fn aggregate_summarizes_job_fairness_over_tenant_runs_only() {
        use crate::stats::JobStats;
        let job = |job, finish_ns, bytes| JobStats {
            job,
            finish_ns,
            bytes_moved: bytes,
            ..JobStats::default()
        };
        let mk = |jobs: Vec<JobStats>, retransmissions: u64| {
            Ok(SimResult {
                finish_time: SimTime::from_us(500.0),
                node_finish: Vec::new(),
                memories: Vec::new(),
                trace: Vec::new(),
                stats: SimStats { jobs, retransmissions, ..SimStats::default() },
            })
        };
        let results = vec![
            mk(Vec::new(), 0),                                       // single-tenant
            mk(vec![job(0, 1_000, 4_000), job(1, 2_000, 4_000)], 3), // 2x spread
            mk(vec![job(0, 1_000, 4_000), job(1, 4_000, 4_000)], 9), // 4x spread
        ];
        let agg = aggregate(&results);
        assert_eq!(agg.finish_us.n, 3, "plain metrics fold every run");
        assert_eq!(agg.job_slowdown_max.n, 2, "fairness folds tenant runs only");
        assert_eq!((agg.job_slowdown_max.min, agg.job_slowdown_max.max), (2.0, 4.0));
        assert_eq!(agg.job_slowdown_min.mean, 1.0);
        assert_eq!(agg.jain_fairness.n, 2);
        assert!(agg.jain_fairness.max < 1.0, "unequal service is unfair");
        assert_eq!((agg.retransmissions.mean, agg.retransmissions.n), (4.0, 3));
    }

    #[test]
    fn summary_of_known_samples() {
        let s = MetricSummary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set: sqrt(32/7).
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.stderr() - s.stddev / 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_summaries() {
        assert_eq!(MetricSummary::from_samples(&[]), MetricSummary::default());
        let one = MetricSummary::from_samples(&[3.5]);
        assert_eq!((one.n, one.mean, one.stddev, one.min, one.max), (1, 3.5, 0.0, 3.5, 3.5));
    }

    /// Regression: large-mean/small-variance replicates — a jitter
    /// sweep's finish times in nanoseconds, means around 10^10 with
    /// single-digit spreads. The naive `E[x²] - E[x]²` form loses all
    /// significant digits there (`10^20 - 10^20`); Welford keeps the
    /// exact answer.
    #[test]
    fn welford_survives_large_mean_small_variance() {
        let base = 1.0e10;
        let samples: Vec<f64> = [0.0, 1.0, 2.0, 3.0, 4.0].iter().map(|o| base + o).collect();
        let s = MetricSummary::from_samples(&samples);
        // Exact values: mean = base + 2, sample variance = 2.5.
        assert_eq!(s.mean, base + 2.0);
        let expect = 2.5f64.sqrt();
        assert!(
            (s.stddev - expect).abs() < 1e-9,
            "stddev {} should be {expect} (naive form gives 0 or NaN here)",
            s.stddev
        );
        // Demonstrate the failure mode this pins against: the naive
        // two-accumulator form collapses to zero variance.
        let sum: f64 = samples.iter().sum();
        let sum_sq: f64 = samples.iter().map(|x| x * x).sum();
        let n = samples.len() as f64;
        let naive_var = (sum_sq - sum * sum / n) / (n - 1.0);
        assert!(
            naive_var <= 0.0 || (naive_var.sqrt() - expect).abs() > 0.3,
            "if the naive form ever becomes accurate here, drop this guard: {naive_var}"
        );

        // And the streaming accumulator matches the slice fold.
        let mut acc = MetricAccumulator::default();
        for &x in &samples {
            acc.push(x);
        }
        assert_eq!(acc.finish(), s);
    }
}
