//! Calendar-queue event scheduling.
//!
//! The engine's pending-event set used to live in two `BinaryHeap`s
//! (the main event queue and the NIC-lapse wake-up queue). A binary
//! heap costs O(log n) per push and pop and sifts 32-byte entries
//! through cache-unfriendly strides, which becomes the dominant
//! non-linear cost once the cube reaches d9–d10 (512–1024 nodes with
//! thousands of pending transmissions). Event timestamps in this
//! simulator are *dense*, *nearly monotone* and *bounded* — every
//! event is scheduled at most one transmission duration past the
//! current instant — which is exactly the regime where a
//! calendar/ladder queue replaces the heap with amortized-O(1)
//! operations.
//!
//! [`CalendarQueue`] is a deterministic two-tier structure:
//!
//! * **Near-future ring** — a window of `nb` time buckets of
//!   `width` ticks each, starting at `ring_start`. Bucket `i` covers
//!   `[ring_start + i·width, ring_start + (i+1)·width)`. Each bucket
//!   keeps its entries **sorted** by the full `(time, seq, item)`
//!   tuple; pushes append when they arrive in order (the common case —
//!   event times grow with simulated time) and binary-insert
//!   otherwise. A cursor walks the ring forward, so a pop is "take the
//!   next entry of the current bucket".
//! * **Sorted overflow tier** — events beyond the ring window land in
//!   an overflow vector, kept sorted descending *lazily* (appends mark
//!   it dirty; one `sort_unstable` pays for the whole batch). When the
//!   ring drains, the window is re-anchored at the earliest overflow
//!   entry and the in-window suffix migrates into the buckets — each
//!   event passes through the overflow tier at most once per window
//!   rebase, and near-future events (the vast majority) never touch
//!   it.
//!
//! **Determinism.** Pops return the minimum entry by the full
//! `(time, seq, item)` lexicographic order — bit-identical to a
//! `BinaryHeap<Reverse<(time, seq, item)>>` fed the same pushes, for
//! *any* interleaving of pushes and pops, including out-of-order
//! pushes earlier than entries already popped (the cursor backtracks
//! into the — necessarily empty — earlier bucket). The differential
//! property test in `crates/simnet/tests/scheduler_differential.rs`
//! pins this equivalence against a reference heap.
//!
//! **Sizing.** `width` starts from the machine's transmission
//! granularity (see `SimConfig::sched_bucket_width_ns`): event times
//! are spaced by roughly one transmission duration and up to `2^d`
//! transmissions complete concurrently, so the width targets about one
//! distinct event time per bucket. That static estimate is only a
//! seed — each window rebase re-derives the width from the *observed*
//! spacing of the backlog it is about to distribute (the ring is
//! empty at that moment, so retuning is free and cannot affect pop
//! order), keeping workloads whose real event spacing diverges from
//! the configured estimate (conditioned slowdowns, sparse barrier
//! tails) at about one entry per bucket. The ring grows (doubling,
//! counted in [`SchedTelemetry::bucket_resizes`]) when a window
//! rebase finds more pending events than buckets.
//!
//! Allocations (bucket vectors, overflow, migration scratch) are
//! retained across [`CalendarQueue::reset`], so arena-driven batch
//! runs reuse them run after run.

/// One scheduled entry: `(time, seq, item)`, ordered lexicographically.
type Entry<T> = (u64, u64, T);

/// Scheduler telemetry of one run (see `SimStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedTelemetry {
    /// Largest number of simultaneously pending entries.
    pub peak_pending: u64,
    /// Ring growths (bucket-count doublings) during the run.
    pub bucket_resizes: u64,
    /// Entries that landed in the far-future overflow tier.
    pub overflow_spills: u64,
}

/// One time bucket: entries sorted ascending by `(time, seq, item)`,
/// with `pos` marking the popped prefix.
#[derive(Debug, Clone)]
struct Bucket<T> {
    entries: Vec<Entry<T>>,
    pos: usize,
}

impl<T> Default for Bucket<T> {
    fn default() -> Self {
        Bucket { entries: Vec::new(), pos: 0 }
    }
}

/// Hard ceiling on the ring size; beyond this the overflow tier
/// absorbs the spread (2^16 buckets ≈ 2 MiB of headers).
const MAX_BUCKETS: usize = 1 << 16;

/// Ring size used when a queue is grown from its `Default` (empty)
/// state without an explicit hint.
const DEFAULT_BUCKETS: usize = 64;

/// Backlog size below which a window rebase keeps its current width —
/// too few samples to estimate the event spacing, and small backlogs
/// drain fine under any width.
const WIDTH_RETUNE_MIN_BACKLOG: usize = 64;

/// Bounds on the adaptively retuned bucket width (ticks), mirroring
/// the clamp of `SimConfig::sched_bucket_width_ns`.
const WIDTH_RETUNE_MIN: u64 = 16;
const WIDTH_RETUNE_MAX: u64 = 1 << 20;

/// A deterministic two-tier calendar queue over `(time, seq, item)`
/// entries; see the module docs for the design and determinism
/// contract.
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    buckets: Vec<Bucket<T>>,
    /// Logical ring size (`<= buckets.len()`; extra buckets from a
    /// larger earlier run keep their allocations but are not scanned).
    nb: usize,
    /// Bucket width in time ticks (nanoseconds), `>= 1`.
    width: u64,
    /// Time at which bucket 0's window starts (multiple of `width`).
    ring_start: u64,
    /// Ring cursor: buckets before it are drained (and cleared).
    cur: usize,
    /// Total entries across ring + overflow.
    len: usize,
    /// Far-future tier; sorted descending when `overflow_sorted`.
    overflow: Vec<Entry<T>>,
    overflow_sorted: bool,
    /// Reused staging buffer for backward rebases.
    scratch: Vec<Entry<T>>,
    peak: usize,
    resizes: u64,
    spills: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new(1, 0)
    }
}

impl<T> CalendarQueue<T> {
    /// Queue with the given bucket width (ticks, clamped to `>= 1`)
    /// and initial ring size (rounded up to a power of two; `0` defers
    /// allocation to first use).
    pub fn new(width: u64, bucket_hint: usize) -> Self {
        let mut q = CalendarQueue {
            buckets: Vec::new(),
            nb: 0,
            width: width.max(1),
            ring_start: 0,
            cur: 0,
            len: 0,
            overflow: Vec::new(),
            overflow_sorted: true,
            scratch: Vec::new(),
            peak: 0,
            resizes: 0,
            spills: 0,
        };
        if bucket_hint > 0 {
            q.grow_ring(bucket_hint.next_power_of_two().min(MAX_BUCKETS));
        }
        q
    }

    /// Re-arm for a new run: drop all entries and zero the telemetry,
    /// keeping every allocation. The ring never shrinks below its
    /// high-water size, so arena reuse across heterogeneous runs keeps
    /// the largest footprint warm.
    pub fn reset(&mut self, width: u64, bucket_hint: usize) {
        self.clear();
        self.width = width.max(1);
        let want = bucket_hint.next_power_of_two().min(MAX_BUCKETS);
        if want > self.nb {
            self.grow_ring(want);
        }
        self.peak = 0;
        self.resizes = 0;
        self.spills = 0;
    }

    /// Drop all entries, keeping allocations and telemetry.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.entries.clear();
            b.pos = 0;
        }
        self.overflow.clear();
        self.overflow_sorted = true;
        self.ring_start = 0;
        self.cur = 0;
        self.len = 0;
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current bucket width in ticks: the configured width until the
    /// first adaptive retune (each window rebase re-derives it from
    /// the backlog's observed event spacing).
    pub fn bucket_width(&self) -> u64 {
        self.width
    }

    /// This run's telemetry so far.
    pub fn telemetry(&self) -> SchedTelemetry {
        SchedTelemetry {
            peak_pending: self.peak as u64,
            bucket_resizes: self.resizes,
            overflow_spills: self.spills,
        }
    }

    /// Grow the logical ring to `want` buckets (allocating if needed).
    fn grow_ring(&mut self, want: usize) {
        if self.buckets.len() < want {
            self.buckets.resize_with(want, Bucket::default);
        }
        self.nb = self.nb.max(want);
    }

    /// Ring bucket holding `time`, or `None` for the overflow tier.
    /// Callers guarantee `time >= self.ring_start`.
    #[inline]
    fn bucket_index(&self, time: u64) -> Option<usize> {
        debug_assert!(time >= self.ring_start);
        let idx = (time - self.ring_start) / self.width;
        if idx < self.nb as u64 {
            Some(idx as usize)
        } else {
            None
        }
    }
}

impl<T: Copy + Ord> CalendarQueue<T> {
    /// Keep `b` sorted: append when the entry arrives in order (the
    /// common case), binary-insert into the live suffix otherwise.
    /// Entries before `b.pos` are already popped; an insertion below
    /// them lands at `pos` — it is the minimum of what *remains*,
    /// which is all a priority queue promises.
    #[inline]
    fn bucket_insert(b: &mut Bucket<T>, e: Entry<T>) {
        match b.entries.last() {
            Some(last) if *last > e => {
                let at = b.pos + b.entries[b.pos..].partition_point(|x| *x <= e);
                b.entries.insert(at, e);
            }
            _ => b.entries.push(e),
        }
    }

    /// Append to the overflow tier, tracking its lazy descending sort.
    #[inline]
    fn overflow_push(&mut self, e: Entry<T>) {
        self.spills += 1;
        if let Some(last) = self.overflow.last() {
            if *last < e {
                self.overflow_sorted = false;
            }
        }
        self.overflow.push(e);
    }

    /// Schedule `item` at `(time, seq)`.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        self.len += 1;
        if self.len > self.peak {
            self.peak = self.len;
        }
        if self.len == 1 {
            // Queue was empty: re-anchor the window at this event so a
            // sparse tail (or a far-future first event) costs nothing.
            if self.nb == 0 {
                self.grow_ring(DEFAULT_BUCKETS);
            }
            self.ring_start = time - time % self.width;
            self.cur = 0;
        } else if time < self.ring_start {
            self.rebase_backward(time);
        }
        let e = (time, seq, item);
        match self.bucket_index(time) {
            Some(idx) => {
                if idx < self.cur {
                    // Out-of-order push behind the cursor: that bucket
                    // was drained (hence empty); back the cursor up.
                    self.cur = idx;
                }
                Self::bucket_insert(&mut self.buckets[idx], e);
            }
            None => self.overflow_push(e),
        }
    }

    /// An out-of-order push landed before the window: re-anchor the
    /// window at it and redistribute the ring (entries past the new
    /// window spill to overflow). Never hit by the engine — simulated
    /// time only moves forward — but required for drop-in
    /// `BinaryHeap` semantics.
    fn rebase_backward(&mut self, min_time: u64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for b in &mut self.buckets[..self.nb] {
            scratch.extend_from_slice(&b.entries[b.pos..]);
            b.entries.clear();
            b.pos = 0;
        }
        self.ring_start = min_time - min_time % self.width;
        self.cur = 0;
        for e in scratch.drain(..) {
            match self.bucket_index(e.0) {
                Some(idx) => Self::bucket_insert(&mut self.buckets[idx], e),
                None => {
                    // Re-spills of already-counted entries: keep the
                    // spill count monotone anyway, it is telemetry.
                    self.overflow_push(e);
                }
            }
        }
        self.scratch = scratch;
    }

    /// The ring is fully drained but entries remain: re-anchor the
    /// window at the earliest overflow entry, growing the ring first
    /// when the backlog outnumbers the buckets, and migrate the
    /// in-window suffix out of the overflow tier.
    fn refill_from_overflow(&mut self) {
        debug_assert!(!self.overflow.is_empty());
        if !self.overflow_sorted {
            self.overflow.sort_unstable_by(|a, b| b.cmp(a));
            self.overflow_sorted = true;
        }
        if self.len > self.nb * 2 && self.nb < MAX_BUCKETS {
            self.grow_ring((self.nb * 2).clamp(DEFAULT_BUCKETS, MAX_BUCKETS));
            self.resizes += 1;
        }
        // The ring is empty here, so retuning the width is free and
        // cannot affect pop order (pops compare full `(time, seq,
        // item)` tuples regardless of bucketing). Target about one
        // entry per bucket using the backlog's observed spacing; the
        // overflow tier is sorted descending, so front/back are the
        // extremes.
        if self.overflow.len() >= WIDTH_RETUNE_MIN_BACKLOG {
            let span = self.overflow[0].0 - self.overflow[self.overflow.len() - 1].0;
            self.width =
                (span / self.overflow.len() as u64).clamp(WIDTH_RETUNE_MIN, WIDTH_RETUNE_MAX);
        }
        let min_time = self.overflow.last().expect("nonempty overflow").0;
        self.ring_start = min_time - min_time % self.width;
        self.cur = 0;
        while let Some(&e) = self.overflow.last() {
            match self.bucket_index(e.0) {
                Some(idx) => {
                    self.overflow.pop();
                    // Ascending off the back of the descending sort:
                    // always the append fast path.
                    Self::bucket_insert(&mut self.buckets[idx], e);
                }
                None => break,
            }
        }
        if self.overflow.is_empty() {
            self.overflow_sorted = true;
        }
    }

    /// Advance the cursor to the next live entry. Returns `false` only
    /// when the queue is empty; otherwise `buckets[cur].entries[pos]`
    /// is the minimum pending entry.
    #[inline]
    fn settle(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        loop {
            while self.cur < self.nb {
                let b = &mut self.buckets[self.cur];
                if b.pos < b.entries.len() {
                    return true;
                }
                if !b.entries.is_empty() {
                    b.entries.clear();
                    b.pos = 0;
                }
                self.cur += 1;
            }
            self.refill_from_overflow();
        }
    }

    /// Remove and return the minimum pending entry only when it is
    /// scheduled exactly at `time` — the event loop's "drain the
    /// current instant first" probe, fused so the cursor settles once.
    pub fn pop_if_time(&mut self, time: u64) -> Option<Entry<T>> {
        if !self.settle() {
            return None;
        }
        let b = &mut self.buckets[self.cur];
        if b.entries[b.pos].0 != time {
            return None;
        }
        let e = b.entries[b.pos];
        b.pos += 1;
        if b.pos == b.entries.len() {
            b.entries.clear();
            b.pos = 0;
        }
        self.len -= 1;
        Some(e)
    }

    /// The minimum pending entry, without removing it.
    pub fn peek(&mut self) -> Option<Entry<T>> {
        if !self.settle() {
            return None;
        }
        let b = &self.buckets[self.cur];
        Some(b.entries[b.pos])
    }

    /// Remove and return the minimum pending entry.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        if !self.settle() {
            return None;
        }
        let b = &mut self.buckets[self.cur];
        let e = b.entries[b.pos];
        b.pos += 1;
        if b.pos == b.entries.len() {
            b.entries.clear();
            b.pos = 0;
        }
        self.len -= 1;
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic splitmix64 stream for in-module tests.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn drain<T: Copy + Ord>(q: &mut CalendarQueue<T>) -> Vec<Entry<T>> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn scheduler_pops_in_time_seq_order() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new(100, 8);
        let mut rng = Rng(7);
        let mut expect = Vec::new();
        for seq in 0..5_000u64 {
            let t = rng.next() % 1_000_000; // spans ring + overflow
            q.push(t, seq, (seq % 17) as u32);
            expect.push((t, seq, (seq % 17) as u32));
        }
        expect.sort_unstable();
        assert_eq!(q.len(), 5_000);
        assert_eq!(drain(&mut q), expect);
        assert!(q.is_empty());
    }

    #[test]
    fn scheduler_orders_duplicate_times_by_seq_and_item() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new(10, 4);
        q.push(500, 3, 9);
        q.push(500, 1, 7);
        q.push(500, 2, 1);
        q.push(500, 1, 2); // duplicate (time, seq): item breaks the tie
        assert_eq!(drain(&mut q), vec![(500, 1, 2), (500, 1, 7), (500, 2, 1), (500, 3, 9)]);
    }

    #[test]
    fn scheduler_peek_matches_pop() {
        let mut q: CalendarQueue<u8> = CalendarQueue::new(50, 4);
        let mut rng = Rng(99);
        for seq in 0..300u64 {
            q.push(rng.next() % 10_000, seq, (seq % 3) as u8);
        }
        while !q.is_empty() {
            let peeked = q.peek();
            assert_eq!(peeked, q.pop());
        }
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn scheduler_interleaves_pushes_and_pops() {
        // Mirror the engine's pattern: pop an event, push a handful of
        // near-future events relative to it.
        let mut q: CalendarQueue<u32> = CalendarQueue::new(1_000, 8);
        let mut seq = 0u64;
        let mut rng = Rng(3);
        for n in 0..64u64 {
            q.push(n * 10, seq, n as u32);
            seq += 1;
        }
        let mut last = (0u64, 0u64);
        let mut popped = 0usize;
        while let Some((t, s, _)) = q.pop() {
            assert!((t, s) >= last, "pop went backwards: {:?} after {:?}", (t, s), last);
            last = (t, s);
            popped += 1;
            if popped < 5_000 {
                for _ in 0..(1 + rng.next() % 2) {
                    let dur = 1 + rng.next() % 500_000; // spills sometimes
                    q.push(t + dur, seq, (seq % 1024) as u32);
                    seq += 1;
                }
            }
        }
        assert!(popped >= 5_000, "generator starved early: {popped}");
        let tel = q.telemetry();
        assert!(tel.peak_pending > 0);
        assert!(tel.overflow_spills > 0, "test meant to exercise the overflow tier");
    }

    #[test]
    fn scheduler_backtracks_for_out_of_order_pushes() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new(100, 8);
        for seq in 0..20u64 {
            q.push(seq * 100, seq, 0);
        }
        for _ in 0..10 {
            q.pop();
        }
        // Earlier than everything popped — and earlier than the window.
        q.push(5, 100, 1);
        assert_eq!(q.pop(), Some((5, 100, 1)), "late push must still pop first");
        // Earlier than the remaining entries but inside the window.
        q.push(950, 101, 2);
        assert_eq!(q.pop(), Some((950, 101, 2)));
        assert_eq!(q.pop(), Some((1000, 10, 0)));
    }

    #[test]
    fn scheduler_ring_grows_under_backlog() {
        // Tiny ring + entries spread far past it: the first refill
        // finds more pending than buckets and doubles the ring.
        let mut q: CalendarQueue<u32> = CalendarQueue::new(1, 2);
        for seq in 0..1_000u64 {
            q.push(10_000 + seq * 7, seq, 0);
        }
        let mut prev = None;
        while let Some(e) = q.pop() {
            if let Some(p) = prev {
                assert!(p <= e);
            }
            prev = Some(e);
        }
        let tel = q.telemetry();
        assert!(tel.bucket_resizes > 0, "backlog should have grown the ring: {tel:?}");
        assert!(tel.overflow_spills > 0);
        assert_eq!(tel.peak_pending, 1_000);
    }

    #[test]
    fn scheduler_adapts_bucket_width_on_rebase() {
        // Configured width wildly wrong for the actual spacing: the
        // static estimate says 16 ticks, but events arrive ~1M ticks
        // apart. The first window rebase re-derives the width from the
        // backlog, so subsequent windows hold ~one entry per bucket
        // instead of forcing a refill per pop.
        let mut q: CalendarQueue<u32> = CalendarQueue::new(16, 4);
        let mut expect = Vec::new();
        for seq in 0..200u64 {
            q.push(seq * 1_000_000, seq, 0);
            expect.push((seq * 1_000_000, seq, 0));
        }
        assert_eq!(q.bucket_width(), 16, "width must not move before a rebase");
        assert_eq!(drain(&mut q), expect, "retuning must not change pop order");
        assert!(
            q.bucket_width() > 16,
            "rebase should have widened the buckets toward the ~1M observed spacing: {}",
            q.bucket_width()
        );
        // A sub-threshold backlog keeps whatever width is in force.
        let w = q.bucket_width();
        for seq in 0..(WIDTH_RETUNE_MIN_BACKLOG as u64 - 1) {
            q.push(seq * 3, seq, 0);
        }
        drain(&mut q);
        assert_eq!(q.bucket_width(), w);
        // Reset re-seeds the width from the caller's static estimate.
        q.reset(37, 4);
        assert_eq!(q.bucket_width(), 37);
    }

    #[test]
    fn scheduler_reset_reuses_allocations_and_zeroes_telemetry() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new(10, 4);
        for seq in 0..500u64 {
            q.push(seq * 1_000, seq, 0);
        }
        drain(&mut q);
        assert!(q.telemetry().peak_pending == 500);
        q.reset(20, 4);
        assert_eq!(q.telemetry(), SchedTelemetry::default());
        assert!(q.is_empty());
        for seq in 0..10u64 {
            q.push(seq, seq, 1);
        }
        assert_eq!(q.len(), 10);
        assert_eq!(drain(&mut q).len(), 10);
    }

    #[test]
    fn scheduler_default_is_usable() {
        let mut q: CalendarQueue<u64> = CalendarQueue::default();
        q.push(42, 0, 7);
        q.push(7, 1, 8);
        assert_eq!(q.pop(), Some((7, 1, 8)));
        assert_eq!(q.pop(), Some((42, 0, 7)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scheduler_handles_huge_times() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new(1 << 40, 4);
        q.push(u64::MAX - 1, 0, 0);
        q.push(1, 1, 1);
        q.push(u64::MAX, 2, 2);
        assert_eq!(q.pop(), Some((1, 1, 1)));
        assert_eq!(q.pop(), Some((u64::MAX - 1, 0, 0)));
        assert_eq!(q.pop(), Some((u64::MAX, 2, 2)));
    }
}
