//! Model-vs-simulator conformance: extract a [`ConditionSummary`] from
//! a simulator configuration and check the conditioned analytic model
//! (`mce_model::conditioned`) against batched simulation runs.
//!
//! The analytic model and the discrete-event engine are this
//! repository's two independent accounts of the same machine. The
//! unconditioned halves are pinned against each other by
//! `predicted_vs_simulated_agreement` (within 1%); this module extends
//! that bridge to *degraded* networks, in the spirit of validating an
//! abstraction against concrete executions: every scenario runs both
//! sides over the same grid and reports per-cell relative error plus
//! winner (best-partition) agreement.
//!
//! * [`condition_summary`] compresses a [`SimConfig`]'s
//!   [`NetCondition`](crate::NetCondition) into the per-dimension
//!   [`ConditionSummary`] the model prices against: resolved link
//!   speeds folded per dimension, background streams folded into
//!   per-dimension contention loads (route, occupancy duration under
//!   the configured switching mode, duty cycle).
//! * [`predicted_us`] prices one `(partition, block size)` cell under
//!   that summary, circuit-switched or store-and-forward to match the
//!   config.
//! * [`condition_fingerprint`] quantizes that summary into the stable
//!   integer cache key (`mce_model::ConditionFingerprint`) the planner
//!   (`mce_plan`) caches precomputed hulls under.
//! * [`run_scenario`] sweeps a partition × block-size grid through a
//!   [`SimBatch`], producing a [`ScenarioOutcome`] with per-cell
//!   errors and the two winner ladders — or a typed [`ScenarioError`]
//!   naming the first cell that failed to simulate.
//!
//! The harness proper lives in `crates/simnet/tests/model_conformance.rs`
//! (quick grid in the normal suite, full grid behind `--ignored`) and
//! the per-regime accuracy envelope it enforces is documented in
//! `crates/model/README.md`.

use crate::batch::SimBatch;
use crate::config::{SimConfig, SwitchingMode};
use crate::netcond::NetCondition;
use crate::program::Program;
use crate::SimError;
use mce_hypercube::routing::DirectedLink;
use mce_hypercube::NodeId;
use mce_model::{
    conditioned_multiphase_saf_time, conditioned_multiphase_time, ConditionFingerprint,
    ConditionSummary,
};
use mce_partitions::Partition;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Extract the per-dimension [`ConditionSummary`] of a configuration:
/// the model-side view of the config's [`NetCondition`](crate::NetCondition)
/// (or a no-op summary when the config is unconditioned).
///
/// Link-speed distributions come from
/// [`NetCondition::resolve_speeds`] folded per dimension, so every
/// profile family and cable override is summarized exactly. Each
/// background stream contributes one touched directed link per
/// dimension of its route, occupied for the stream's conditioned
/// transmission duration out of every period (per-hop duration under
/// store and forward, where a hop holds only one link at a time).
/// Streams are assumed to outlast the run being predicted — the
/// convention of every hotspot ladder in this repository; `start_ns`
/// and `count` are not consulted.
pub fn condition_summary(cfg: &SimConfig) -> ConditionSummary {
    let d = cfg.dimension;
    let Some(nc) = &cfg.netcond else {
        return ConditionSummary::noop(d);
    };
    let link_factors = nc.resolve_speeds(d);
    let mut summary = ConditionSummary::from_link_factors(d, &link_factors);
    for stream in &nc.background {
        let mask = stream.src.0 ^ stream.dst.0;
        if mask == 0 || stream.period_ns == 0 || stream.count == 0 {
            continue;
        }
        let (max_f, sum_f) = route_factors(d, stream.src, mask, &link_factors);
        let period_us = stream.period_ns as f64 / 1000.0;
        let busy_us = match cfg.switching {
            SwitchingMode::Circuit => {
                cfg.conditioned_transmission_ns(stream.bytes, max_f, sum_f) as f64 / 1000.0
            }
            SwitchingMode::StoreAndForward => {
                // One hop holds one link; use the mean per-hop duration.
                let hops = mask.count_ones() as f64;
                cfg.conditioned_transmission_ns(stream.bytes, sum_f / hops, sum_f / hops) as f64
                    / 1000.0
            }
        };
        summary.add_stream(mask, busy_us, period_us);
    }
    summary
}

/// The quantized cache key of a configuration's condition:
/// [`condition_summary`]`(cfg).fingerprint()`. This is the simulator
/// side of the planner's cache key — two configs whose resolved
/// conditions agree to within the fingerprint's quantization bound
/// (≈ 0.2% per field, `mce_model::FINGERPRINT_MANTISSA_BITS`) share a
/// key and therefore a cached optimality hull.
pub fn condition_fingerprint(cfg: &SimConfig) -> ConditionFingerprint {
    condition_summary(cfg).fingerprint()
}

/// `(max, sum)` slowdown factors along the e-cube route of
/// `(src, mask)`, from a flat `from * d + dim` factor table.
fn route_factors(d: u32, src: NodeId, mask: u32, link_factors: &[f64]) -> (f64, f64) {
    let dims = d as usize;
    let mut cur = src.0;
    let mut rem = mask;
    let (mut max_f, mut sum_f) = (0.0f64, 0.0f64);
    while rem != 0 {
        let bit = rem & rem.wrapping_neg();
        let link = DirectedLink { from: NodeId(cur), to: NodeId(cur ^ bit) };
        let f = link_factors[link.from.0 as usize * dims + link.dimension() as usize];
        max_f = max_f.max(f);
        sum_f += f;
        cur ^= bit;
        rem &= rem - 1;
    }
    (max_f, sum_f)
}

/// Price one `(partition, block size)` cell of `cfg` with the
/// conditioned analytic model: [`conditioned_multiphase_time`] under
/// circuit switching, [`conditioned_multiphase_saf_time`] under store
/// and forward, both against [`condition_summary`]`(cfg)`.
pub fn predicted_us(cfg: &SimConfig, dims: &[u32], m: usize) -> f64 {
    let cond = condition_summary(cfg);
    predicted_us_with(cfg, &cond, dims, m)
}

/// [`predicted_us`] against a precomputed summary (grids price many
/// cells under one condition; the summary extraction is per-scenario,
/// not per-cell).
pub fn predicted_us_with(cfg: &SimConfig, cond: &ConditionSummary, dims: &[u32], m: usize) -> f64 {
    match cfg.switching {
        SwitchingMode::Circuit => {
            conditioned_multiphase_time(&cfg.params, m as f64, cfg.dimension, dims, cond)
        }
        SwitchingMode::StoreAndForward => {
            conditioned_multiphase_saf_time(&cfg.params, m as f64, cfg.dimension, dims, cond)
        }
    }
}

/// One `(partition, block size)` cell: both accounts and their
/// relative disagreement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConformanceCell {
    /// Partition in paper notation, canonical order.
    pub partition: String,
    /// Block size, bytes.
    pub block_size: usize,
    /// Simulated finish time, µs.
    pub simulated_us: f64,
    /// Conditioned-model prediction, µs.
    pub predicted_us: f64,
}

impl ConformanceCell {
    /// Relative prediction error, against the simulated value.
    pub fn rel_err(&self) -> f64 {
        if self.simulated_us == 0.0 {
            return if self.predicted_us == 0.0 { 0.0 } else { f64::INFINITY };
        }
        (self.predicted_us - self.simulated_us).abs() / self.simulated_us
    }
}

/// Outcome of one scenario's grid: per-cell errors plus the simulated
/// and predicted winner ladders over the block sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario label, e.g. `d5/hotspot_4`.
    pub label: String,
    /// Block-size ladder, bytes, ascending.
    pub sizes: Vec<usize>,
    /// Partitions compared, paper notation.
    pub partitions: Vec<String>,
    /// Every cell, partition-major in `partitions` × `sizes` order.
    pub cells: Vec<ConformanceCell>,
    /// Largest per-cell relative error.
    pub max_rel_err: f64,
    /// Index into `partitions` of the simulated winner per size.
    pub simulated_winner: Vec<usize>,
    /// Index into `partitions` of the predicted winner per size.
    pub predicted_winner: Vec<usize>,
}

impl ScenarioOutcome {
    /// Size indices where model and simulator *materially* disagree on
    /// the winning partition away from the crossover. A ladder step is
    /// exempt when:
    ///
    /// * the simulated winner changes at it or at an adjacent step —
    ///   at the crossover the candidates are within a hair of each
    ///   other and either answer is defensible (the paper's own
    ///   crossover is a band, not a point); or
    /// * the model's pick is a *statistical tie*: its simulated time
    ///   is within `margin_frac` of the simulated winner's, so the
    ///   "wrong" choice costs less than the margin (two plans can run
    ///   neck and neck across a whole ladder, e.g. `{2,1}` vs Standard
    ///   Exchange under store and forward).
    ///
    /// Everywhere else the winner must match exactly.
    pub fn winner_disagreements_off_crossover(&self, margin_frac: f64) -> Vec<usize> {
        let sim = &self.simulated_winner;
        (0..sim.len())
            .filter(|&i| {
                let near_boundary =
                    (i > 0 && sim[i] != sim[i - 1]) || (i + 1 < sim.len() && sim[i] != sim[i + 1]);
                if near_boundary || self.predicted_winner[i] == sim[i] {
                    return false;
                }
                let sim_time = |pi: usize| self.cells[pi * self.sizes.len() + i].simulated_us;
                let best = sim_time(sim[i]);
                let picked = sim_time(self.predicted_winner[i]);
                picked > best * (1.0 + margin_frac)
            })
            .collect()
    }

    /// Smallest ladder size from which the simulated winner stays the
    /// singleton `{d}` — the measured conditioned crossover (`None`
    /// when the singleton never takes over within the ladder).
    pub fn simulated_singleton_takeover(&self) -> Option<usize> {
        self.takeover(&self.simulated_winner)
    }

    /// The model-side counterpart of
    /// [`ScenarioOutcome::simulated_singleton_takeover`].
    pub fn predicted_singleton_takeover(&self) -> Option<usize> {
        self.takeover(&self.predicted_winner)
    }

    fn takeover(&self, winners: &[usize]) -> Option<usize> {
        let singleton = self.partitions.iter().find(|p| !p.contains(','))?;
        singleton_takeover(
            singleton,
            self.sizes.iter().zip(winners).map(|(&m, &w)| (m, self.partitions[w].as_str())),
        )
    }
}

/// Smallest ladder size from which `singleton` (the `{d}` plan, in
/// paper notation) *stays* the winner: a later size where it loses
/// resets the takeover. The one shared definition of the measured
/// crossover, used by [`ScenarioOutcome`], the robustness study and
/// the paper-claims pin — tweak it here and every consumer moves
/// together.
pub fn singleton_takeover<'a>(
    singleton: &str,
    winners: impl IntoIterator<Item = (usize, &'a str)>,
) -> Option<usize> {
    let mut takeover = None;
    for (m, winner) in winners {
        if winner == singleton {
            takeover.get_or_insert(m);
        } else {
            takeover = None;
        }
    }
    takeover
}

/// Map an analytic crossover block size onto a ladder, in
/// [`singleton_takeover`]'s terms: the smallest ladder size at or
/// beyond the crossover. The companion for comparing
/// `mce_model::conditioned_crossover_block_size` (or the raw Eq. 1/2
/// crossover) against measured takeovers, handling that function's
/// documented ends the way a winner ladder would:
///
/// * `f64::INFINITY` (or any non-finite value) — the challenger never
///   takes over: `None`, matching a ladder whose winner column never
///   settles on the singleton.
/// * `0.0` — takeover from the first byte: the ladder's smallest size.
/// * anything between — the first ladder size at or past the
///   crossover; `None` when the whole ladder sits below it.
pub fn crossover_takeover(crossover_bytes: f64, sizes: &[usize]) -> Option<usize> {
    if !crossover_bytes.is_finite() {
        return None;
    }
    sizes.iter().copied().find(|&m| m as f64 >= crossover_bytes)
}

/// A conformance cell failed to simulate: the grid coordinates of the
/// first failing cell plus the engine's typed [`SimError`].
///
/// Historically `run_scenario` panicked here. Conformance scenarios
/// are routable by construction, so a failure *is* a harness bug in
/// test context — but the planner (`mce_plan`) routes live
/// out-of-envelope queries through the same entry point, and a service
/// degrades to its analytic answer rather than aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Scenario label the failing grid belonged to.
    pub label: String,
    /// Partition of the failing cell, paper notation.
    pub partition: String,
    /// Block size of the failing cell, bytes.
    pub block_size: usize,
    /// The engine's failure.
    pub error: SimError,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conformance cell {} m={} of {} failed to simulate: {}",
            self.partition, self.block_size, self.label, self.error
        )
    }
}

impl std::error::Error for ScenarioError {}

/// Run one scenario: simulate every `(partition, block size)` cell of
/// the grid under `cfg` through a parallel [`SimBatch`] (jitter-free
/// and single-replicate — both sides are deterministic) and price the
/// same cells with the conditioned model. `build` compiles one cell's
/// workload: `(dimension, partition parts, block size)` to per-node
/// programs and initial memories (callers pass
/// `mce_core::builder::build_multiphase_programs` plus stamped
/// memories; the builder crate sits above this one).
///
/// # Errors
///
/// Returns a [`ScenarioError`] naming the first cell whose simulation
/// failed (e.g. an unroutable pair under a faulted condition). Test
/// harnesses unwrap it — their grids are routable by construction —
/// while the planner's simulator fallback degrades to the analytic
/// answer instead of aborting.
pub fn run_scenario(
    label: &str,
    cfg: &SimConfig,
    partitions: &[Partition],
    sizes: &[usize],
    build: impl Fn(u32, &[u32], usize) -> (Vec<Program>, Vec<Vec<u8>>),
) -> Result<ScenarioOutcome, ScenarioError> {
    assert!(!partitions.is_empty() && !sizes.is_empty(), "empty conformance grid");
    let cond = condition_summary(cfg);
    let mut batch = SimBatch::new(cfg.clone());
    let mut predicted = Vec::with_capacity(partitions.len() * sizes.len());
    for part in partitions {
        for &m in sizes {
            let (programs, memories) = build(cfg.dimension, part.parts(), m);
            batch.push_run(Arc::new(programs), memories);
            predicted.push(predicted_us_with(cfg, &cond, part.parts(), m));
        }
    }
    let results = batch.run();

    let mut cells = Vec::with_capacity(predicted.len());
    let mut max_rel_err = 0.0f64;
    for (i, (result, pred)) in results.into_iter().zip(&predicted).enumerate() {
        let sim = match result {
            Ok(r) => r.finish_time.as_us(),
            Err(error) => {
                return Err(ScenarioError {
                    label: label.to_string(),
                    partition: partitions[i / sizes.len()].to_string(),
                    block_size: sizes[i % sizes.len()],
                    error,
                })
            }
        };
        let cell = ConformanceCell {
            partition: partitions[i / sizes.len()].to_string(),
            block_size: sizes[i % sizes.len()],
            simulated_us: sim,
            predicted_us: *pred,
        };
        max_rel_err = max_rel_err.max(cell.rel_err());
        cells.push(cell);
    }

    let winner = |time: &dyn Fn(usize, usize) -> f64| -> Vec<usize> {
        (0..sizes.len())
            .map(|mi| {
                (0..partitions.len())
                    .min_by(|&a, &b| time(a, mi).total_cmp(&time(b, mi)))
                    .expect("at least one partition")
            })
            .collect()
    };
    let simulated_winner = winner(&|pi, mi| cells[pi * sizes.len() + mi].simulated_us);
    let predicted_winner = winner(&|pi, mi| cells[pi * sizes.len() + mi].predicted_us);

    Ok(ScenarioOutcome {
        label: label.to_string(),
        sizes: sizes.to_vec(),
        partitions: partitions.iter().map(|p| p.to_string()).collect(),
        cells,
        max_rel_err,
        simulated_winner,
        predicted_winner,
    })
}

/// The candidate-partition set every conformance grid compares: the
/// clean hull of optimality (the partitions that are ever optimal,
/// always including the singleton `{d}`) plus Standard Exchange — the
/// same cast as the paper's figures and the robustness study.
pub fn candidate_partitions(
    params: &mce_model::MachineParams,
    d: u32,
    m_max: f64,
) -> Vec<Partition> {
    let mut parts: Vec<Partition> = mce_model::optimality_hull(params, d, m_max, 1.0)
        .into_iter()
        .map(|f| f.partition)
        .collect();
    let se = Partition::all_ones(d);
    if !parts.contains(&se) {
        parts.push(se);
    }
    parts
}

/// A hotspot [`NetCondition`]: `level` phase-staggered background
/// streams across the cube's main diagonals, the ladder shape shared
/// by [`SimBatch::hotspot_sweep`], the robustness study and the
/// conformance grids. Streams outlast any cell of a conformance run
/// (`count` × `period_ns` covers the slowest Standard Exchange cell
/// with margin).
pub fn hotspot_condition(d: u32, level: u32) -> NetCondition {
    let n = 1u32 << d;
    let mut nc = NetCondition::default();
    for j in 0..level {
        let stream = crate::netcond::BackgroundStream {
            src: NodeId(j % n),
            dst: NodeId((j % n) ^ (n - 1)),
            bytes: 400,
            start_ns: 0,
            period_ns: 600_000,
            count: 150,
        };
        nc = nc.with_background(stream.staggered(j, level));
    }
    nc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netcond::{BackgroundStream, Cable};

    #[test]
    fn unconditioned_config_summarizes_to_noop() {
        let cfg = SimConfig::ipsc860(4);
        assert!(condition_summary(&cfg).is_noop());
        let noop = cfg.with_netcond(NetCondition::default());
        assert!(condition_summary(&noop).is_noop());
    }

    #[test]
    fn uniform_and_override_speeds_fold_per_dimension() {
        let nc = NetCondition::uniform_slowdown(2.0).with_override(Cable::new(NodeId(0), 1), 8.0);
        let cfg = SimConfig::ipsc860(3).with_netcond(nc);
        let s = condition_summary(&cfg);
        assert!(!s.is_noop());
        let f = s.factors();
        assert_eq!(f[0].mean, 2.0);
        assert_eq!(f[0].max, 2.0);
        // Dim 1: two of eight directed links overridden to 8.0.
        assert_eq!(f[1].max, 8.0);
        assert!((f[1].mean - (6.0 * 2.0 + 2.0 * 8.0) / 8.0).abs() < 1e-12);
    }

    #[test]
    fn streams_fold_into_touched_dimensions_only() {
        let stream = BackgroundStream {
            src: NodeId(0),
            dst: NodeId(0b101),
            bytes: 400,
            start_ns: 0,
            period_ns: 600_000,
            count: 100,
        };
        let cfg =
            SimConfig::ipsc860(3).with_netcond(NetCondition::default().with_background(stream));
        let s = condition_summary(&cfg);
        let c = s.contention();
        assert!(c[0].touch > 0.0 && c[2].touch > 0.0);
        assert_eq!(c[1].touch, 0.0, "dim 1 is not on the route");
        // One stream touches 1 of 8 directed links per crossed dim.
        assert!((c[0].touch - 1.0 / 8.0).abs() < 1e-12);
        // Occupancy: λ + τ·400 + δ·2 = 95 + 157.6 + 20.6 µs.
        assert!((c[0].busy_us - 273.2).abs() < 1e-9, "{}", c[0].busy_us);
        assert!((c[0].util - 273.2 / 600.0).abs() < 1e-9);
    }

    #[test]
    fn saf_streams_use_per_hop_occupancy() {
        let stream = BackgroundStream {
            src: NodeId(0),
            dst: NodeId(0b111),
            bytes: 100,
            start_ns: 0,
            period_ns: 600_000,
            count: 100,
        };
        let circuit =
            SimConfig::ipsc860(3).with_netcond(NetCondition::default().with_background(stream));
        let saf = circuit.clone().with_store_and_forward();
        let c_circuit = condition_summary(&circuit).contention()[0];
        let c_saf = condition_summary(&saf).contention()[0];
        // A circuit holds the link for the full 3-hop transmission; a
        // SAF hop holds it for one hop's worth.
        assert!(c_saf.busy_us < c_circuit.busy_us);
    }

    #[test]
    fn seeded_profile_summary_brackets_the_draws() {
        let cfg = SimConfig::ipsc860(4).with_netcond(NetCondition::seeded_speeds(1.0, 3.0, 77));
        let s = condition_summary(&cfg);
        for f in s.factors() {
            assert!(f.min >= 1.0 && f.max <= 3.0 && f.min <= f.mean && f.mean <= f.max);
        }
    }

    #[test]
    fn candidate_partitions_cover_figure_cast() {
        let params = mce_model::MachineParams::ipsc860();
        let parts = candidate_partitions(&params, 6, 400.0);
        let names: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
        assert!(names.contains(&"{6}".to_string()));
        assert!(names.contains(&"{1,1,1,1,1,1}".to_string()));
        assert!(names.len() >= 3);
    }

    #[test]
    fn fingerprint_extraction_matches_summary_and_buckets_configs() {
        let d = 4u32;
        let clean = SimConfig::ipsc860(d);
        assert_eq!(condition_fingerprint(&clean), condition_summary(&clean).fingerprint());
        // Two hotspot configs with the same condition share a key...
        let hot_a = SimConfig::ipsc860(d).with_netcond(hotspot_condition(d, 4));
        let hot_b = SimConfig::ipsc860(d).with_netcond(hotspot_condition(d, 4));
        assert_eq!(condition_fingerprint(&hot_a), condition_fingerprint(&hot_b));
        // ...and differ from the clean cube and from other levels.
        assert_ne!(condition_fingerprint(&hot_a), condition_fingerprint(&clean));
        let hot_c = SimConfig::ipsc860(d).with_netcond(hotspot_condition(d, 8));
        assert_ne!(condition_fingerprint(&hot_a), condition_fingerprint(&hot_c));
    }

    #[test]
    fn crossover_takeover_handles_both_documented_ends() {
        let ladder = [20usize, 40, 80, 160, 320];
        // INFINITY — Standard never strictly beaten (incl. exact
        // ties) — maps to "no takeover", like a ladder whose winners
        // never settle on the singleton.
        assert_eq!(crossover_takeover(f64::INFINITY, &ladder), None);
        assert_eq!(crossover_takeover(f64::NAN, &ladder), None);
        // 0.0 — Optimal from the first byte — takes the whole ladder.
        assert_eq!(crossover_takeover(0.0, &ladder), Some(20));
        // Interior crossovers round up to the next ladder rung.
        assert_eq!(crossover_takeover(100.0, &ladder), Some(160));
        assert_eq!(crossover_takeover(160.0, &ladder), Some(160));
        // Past the ladder: indistinguishable from "never" at this
        // resolution.
        assert_eq!(crossover_takeover(400.0, &ladder), None);
        // Consistency with singleton_takeover on an idealized ladder:
        // winners = singleton from the crossover on.
        let cross = 100.0;
        let winners: Vec<(usize, &str)> = ladder
            .iter()
            .map(|&m| (m, if (m as f64) >= cross { "{6}" } else { "{3,3}" }))
            .collect();
        assert_eq!(singleton_takeover("{6}", winners), crossover_takeover(cross, &ladder));
    }

    #[test]
    fn faulted_scenario_returns_typed_error_not_panic() {
        // A fault on every dimension-0 link out of node 0 makes pairs
        // through it unroutable; run_scenario must surface the engine's
        // typed error with the failing cell's coordinates.
        let d = 3u32;
        let nc = NetCondition::default().with_fault(NodeId(0), 0);
        let cfg = SimConfig::ipsc860(d).with_netcond(nc);
        let parts = [Partition::new(vec![d])];
        let err = run_scenario("test/faulted", &cfg, &parts, &[32], build_cell).unwrap_err();
        assert_eq!(err.label, "test/faulted");
        assert_eq!(err.partition, "{3}");
        assert_eq!(err.block_size, 32);
        assert!(
            matches!(err.error, SimError::Unroutable { .. }),
            "expected Unroutable, got {:?}",
            err.error
        );
        // And the Display chain names the cell.
        let msg = err.to_string();
        assert!(msg.contains("{3}") && msg.contains("m=32"), "{msg}");
    }

    /// Minimal cell builder for the typed-error test: a one-way
    /// distance-1 send `0 -> 1` (killing that cable has no detour, so
    /// the run is unroutable up front). The real builder crates sit
    /// above this one; the error path only needs *a* cell that
    /// exercises the faulted link.
    fn build_cell(d: u32, _dims: &[u32], m: usize) -> (Vec<Program>, Vec<Vec<u8>>) {
        use crate::message::{MsgKind, Tag};
        use crate::program::Op;
        let n = 1usize << d;
        let mut programs = vec![Program::empty(); n];
        programs[0] = Program {
            ops: vec![Op::Send {
                dst: NodeId(1),
                from: 0..m,
                tag: Tag::data(0, 1),
                kind: MsgKind::Forced,
            }],
        };
        programs[1] = Program {
            ops: vec![
                Op::post_recv(NodeId(0), Tag::data(0, 1), 0..m),
                Op::wait_recv(NodeId(0), Tag::data(0, 1)),
            ],
        };
        let memories = (0..n).map(|_| vec![0u8; m.max(1)]).collect();
        (programs, memories)
    }
}
