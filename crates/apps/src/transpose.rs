//! Distributed matrix transpose via complete exchange.
//!
//! The `N x N` matrix (`N = 2^d * r`) is mapped onto `2^d` processors
//! in row bands of `r` rows each — the mapping of Figure 2 of the
//! paper. Transposing requires every processor to send one `r x r`
//! block to every other processor: exactly the complete exchange with
//! block size `m = 8 r^2` bytes.

use mce_core::fabric::lockstep;
use mce_core::planner::best_plan;
use mce_core::thread_fabric::thread_complete_exchange;
use mce_model::MachineParams;

/// A row-band-distributed square matrix of `f64`.
///
/// Node `i` owns rows `i*r .. (i+1)*r`, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct BandMatrix {
    /// Cube dimension; `2^d` nodes.
    pub d: u32,
    /// Rows (and per-node columns blocks) per node.
    pub r: usize,
    /// Per-node bands, each `r * n()` values, row-major.
    pub bands: Vec<Vec<f64>>,
}

impl BandMatrix {
    /// Matrix side length `N = 2^d * r`.
    pub fn n(&self) -> usize {
        (1usize << self.d) * self.r
    }

    /// Build from a dense row-major matrix.
    pub fn from_dense(d: u32, r: usize, dense: &[f64]) -> Self {
        let nodes = 1usize << d;
        let n = nodes * r;
        assert_eq!(dense.len(), n * n, "dense matrix must be N x N");
        let bands = (0..nodes).map(|i| dense[i * r * n..(i + 1) * r * n].to_vec()).collect();
        BandMatrix { d, r, bands }
    }

    /// Reassemble the dense row-major matrix.
    pub fn to_dense(&self) -> Vec<f64> {
        let n = self.n();
        let mut out = Vec::with_capacity(n * n);
        for band in &self.bands {
            assert_eq!(band.len(), self.r * n);
            out.extend_from_slice(band);
        }
        out
    }

    /// Element accessor on the distributed representation.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let node = row / self.r;
        let local = row % self.r;
        self.bands[node][local * self.n() + col]
    }
}

/// Pack a band into exchange layout: slot `j` = the `r x r` block of
/// columns `j*r..(j+1)*r`, row-major within the block, as LE bytes.
fn pack_blocks(band: &[f64], r: usize, nodes: usize) -> Vec<u8> {
    let n = nodes * r;
    let m = r * r * 8;
    let mut mem = vec![0u8; nodes * m];
    for j in 0..nodes {
        for a in 0..r {
            for b in 0..r {
                let v = band[a * n + j * r + b];
                let off = j * m + (a * r + b) * 8;
                mem[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
    }
    mem
}

/// Unpack the exchanged layout into the transposed band: received slot
/// `p` holds the block from node `p` (its rows, our columns); the
/// transposed band's columns `p*r..` are that block transposed.
fn unpack_blocks(mem: &[u8], r: usize, nodes: usize) -> Vec<f64> {
    let n = nodes * r;
    let m = r * r * 8;
    let mut band = vec![0.0f64; r * n];
    for p in 0..nodes {
        for a in 0..r {
            for b in 0..r {
                let off = p * m + (a * r + b) * 8;
                let mut buf = [0u8; 8];
                buf.copy_from_slice(&mem[off..off + 8]);
                let v = f64::from_le_bytes(buf);
                // Incoming block element (a, b) = A[p*r + a][me*r + b];
                // transposed band element (b, p*r + a) = it.
                band[b * n + p * r + a] = v;
            }
        }
    }
    band
}

/// Transport used for the exchange step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// One OS thread per node with crossbeam channels.
    Threads,
    /// In-process lock-step reference (deterministic, single thread).
    Reference,
}

/// Transpose a band-distributed matrix.
///
/// `dims` selects the multiphase partition; `None` plans it from the
/// iPSC-860 model and the actual block size `8 r^2`.
pub fn transpose_distributed(
    matrix: &BandMatrix,
    dims: Option<&[u32]>,
    transport: Transport,
) -> BandMatrix {
    let nodes = 1usize << matrix.d;
    let r = matrix.r;
    let m = r * r * 8;
    let planned;
    let dims: &[u32] = match dims {
        Some(dims) => dims,
        None => {
            planned = best_plan(&MachineParams::ipsc860(), matrix.d, m).dims;
            &planned
        }
    };
    let memories: Vec<Vec<u8>> = matrix.bands.iter().map(|b| pack_blocks(b, r, nodes)).collect();
    let exchanged = match transport {
        Transport::Threads => thread_complete_exchange(matrix.d, dims, memories, m),
        Transport::Reference => lockstep::run(matrix.d, dims, memories, m),
    };
    BandMatrix {
        d: matrix.d,
        r,
        bands: exchanged.iter().map(|mem| unpack_blocks(mem, r, nodes)).collect(),
    }
}

/// Sequential reference transpose of a dense row-major matrix.
pub fn transpose_dense(n: usize, dense: &[f64]) -> Vec<f64> {
    assert_eq!(dense.len(), n * n);
    let mut out = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            out[j * n + i] = dense[i * n + j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(d: u32, r: usize) -> BandMatrix {
        let n = (1usize << d) * r;
        let dense: Vec<f64> = (0..n * n).map(|k| k as f64 * 0.5 + 1.0).collect();
        BandMatrix::from_dense(d, r, &dense)
    }

    #[test]
    fn roundtrip_dense() {
        let mat = test_matrix(2, 3);
        let dense = mat.to_dense();
        let back = BandMatrix::from_dense(2, 3, &dense);
        assert_eq!(mat, back);
        assert_eq!(mat.get(5, 7), dense[5 * 12 + 7]);
    }

    #[test]
    fn reference_transpose_matches_dense() {
        for (d, r) in [(1u32, 2usize), (2, 2), (3, 3), (4, 1)] {
            let mat = test_matrix(d, r);
            let n = mat.n();
            let t = transpose_distributed(&mat, None, Transport::Reference);
            assert_eq!(t.to_dense(), transpose_dense(n, &mat.to_dense()), "d={d} r={r}");
        }
    }

    #[test]
    fn threaded_transpose_matches_dense() {
        for (d, r) in [(2u32, 4usize), (3, 2)] {
            let mat = test_matrix(d, r);
            let n = mat.n();
            let t = transpose_distributed(&mat, None, Transport::Threads);
            assert_eq!(t.to_dense(), transpose_dense(n, &mat.to_dense()), "d={d} r={r}");
        }
    }

    #[test]
    fn transpose_is_involution() {
        let mat = test_matrix(3, 2);
        let tt = transpose_distributed(
            &transpose_distributed(&mat, None, Transport::Reference),
            None,
            Transport::Reference,
        );
        assert_eq!(tt, mat);
    }

    #[test]
    fn explicit_partition_gives_same_result() {
        let mat = test_matrix(3, 2);
        let a = transpose_distributed(&mat, Some(&[3]), Transport::Reference);
        let b = transpose_distributed(&mat, Some(&[1, 1, 1]), Transport::Reference);
        let c = transpose_distributed(&mat, Some(&[2, 1]), Transport::Reference);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn pack_unpack_are_inverse_through_self_exchange() {
        // Packing then unpacking an identity exchange (every node kept
        // its own blocks) produces the transpose of the local band
        // pattern — spot check the index math on a tiny case.
        let d = 1u32;
        let r = 2usize;
        let mat = test_matrix(d, r);
        let t = transpose_distributed(&mat, Some(&[1]), Transport::Reference);
        let n = mat.n();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(t.get(i, j), mat.get(j, i), "({i},{j})");
            }
        }
    }
}
