//! Distributed table lookup.
//!
//! A key-value table is hash-partitioned over the `2^d` nodes; every
//! node holds a batch of query keys whose owners are scattered. The
//! lookup runs in two complete exchanges (the "run-time scheduling and
//! execution of loops on message passing machines" pattern of Saltz et
//! al., cited in Section 3):
//!
//! 1. **scatter queries**: each node routes its query keys to the
//!    owner nodes;
//! 2. each owner answers its incoming queries from its local shard;
//! 3. **gather answers**: the answers are routed back.
//!
//! Batches between each pair are padded to a fixed per-pair capacity
//! so that both rounds are fixed-block-size complete exchanges.

use crate::transpose::Transport;
use mce_core::fabric::lockstep;
use mce_core::planner::best_plan;
use mce_core::thread_fabric::thread_complete_exchange;
use mce_model::MachineParams;
use std::collections::HashMap;

/// Sentinel for "no entry" answers and padding slots.
pub const NONE_SENTINEL: u64 = u64::MAX;

/// A hash-partitioned distributed key-value table.
#[derive(Debug, Clone)]
pub struct DistributedTable {
    d: u32,
    shards: Vec<HashMap<u64, u64>>,
}

impl DistributedTable {
    /// Build from a flat list of entries; keys are assigned to node
    /// `key % 2^d` (a simple, observable partitioning function).
    ///
    /// # Panics
    ///
    /// Panics if any value equals [`NONE_SENTINEL`] (`u64::MAX`),
    /// which the answer protocol reserves for "absent".
    pub fn new(d: u32, entries: &[(u64, u64)]) -> Self {
        let n = 1usize << d;
        let mut shards = vec![HashMap::new(); n];
        for &(k, v) in entries {
            assert_ne!(v, NONE_SENTINEL, "value u64::MAX is reserved for absent answers");
            shards[(k % n as u64) as usize].insert(k, v);
        }
        DistributedTable { d, shards }
    }

    /// Owner node of a key.
    pub fn owner(&self, key: u64) -> usize {
        (key % (1u64 << self.d)) as usize
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        1usize << self.d
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sequential oracle lookup.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.shards[self.owner(key)].get(&key).copied()
    }

    /// Distributed batch lookup: `queries[i]` is node `i`'s query
    /// list. Returns per-node answer lists (aligned with the query
    /// lists; `None` for absent keys).
    ///
    /// `capacity` is the per-pair batch capacity (queries from one
    /// node to one owner); it must bound the actual per-pair counts.
    pub fn batch_lookup(
        &self,
        queries: &[Vec<u64>],
        capacity: usize,
        dims: Option<&[u32]>,
        transport: Transport,
    ) -> Vec<Vec<Option<u64>>> {
        let n = self.num_nodes();
        assert_eq!(queries.len(), n, "one query list per node");
        let m = capacity * 8; // u64 keys / answers
        let planned;
        let dims: &[u32] = match dims {
            Some(dims) => dims,
            None => {
                planned = best_plan(&MachineParams::ipsc860(), self.d, m).dims;
                &planned
            }
        };

        // Round 1: scatter queries. Memory slot `dst` of node `x`
        // holds x's (padded) queries owned by `dst`. Remember each
        // query's position so answers can be re-aligned.
        let mut memories: Vec<Vec<u8>> = Vec::with_capacity(n);
        // positions[x][dst][slot] = index into queries[x].
        let mut positions: Vec<Vec<Vec<usize>>> = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // x is a node label
        for x in 0..n {
            let mut mem = vec![0u8; n * m];
            let mut pos = vec![Vec::new(); n];
            let mut fill = vec![0usize; n];
            // Initialize padding.
            for slot in 0..n * capacity {
                mem[slot * 8..slot * 8 + 8].copy_from_slice(&NONE_SENTINEL.to_le_bytes());
            }
            for (qi, &key) in queries[x].iter().enumerate() {
                let owner = self.owner(key);
                let k = fill[owner];
                assert!(
                    k < capacity,
                    "node {x} exceeds per-pair capacity {capacity} toward owner {owner}"
                );
                let off = owner * m + k * 8;
                mem[off..off + 8].copy_from_slice(&key.to_le_bytes());
                pos[owner].push(qi);
                fill[owner] += 1;
            }
            memories.push(mem);
            positions.push(pos);
        }
        let scattered = run_exchange(self.d, dims, memories, m, transport);

        // Step 2: answer locally. After the exchange, slot `p` of
        // owner `o` holds the queries *from* node `p`. Answer in
        // place: key -> value (or sentinel).
        let mut answer_memories: Vec<Vec<u8>> = Vec::with_capacity(n);
        for (o, mem) in scattered.iter().enumerate() {
            let mut out = mem.clone();
            for slot in 0..n * capacity {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(&mem[slot * 8..slot * 8 + 8]);
                let key = u64::from_le_bytes(buf);
                let answer = if key == NONE_SENTINEL {
                    NONE_SENTINEL
                } else {
                    self.shards[o].get(&key).copied().unwrap_or(NONE_SENTINEL)
                };
                out[slot * 8..slot * 8 + 8].copy_from_slice(&answer.to_le_bytes());
            }
            answer_memories.push(out);
        }

        // Round 2: gather answers back. After this exchange, slot `o`
        // of node `x` holds the answers from owner `o`, in the order x
        // sent its queries to `o`.
        let gathered = run_exchange(self.d, dims, answer_memories, m, transport);

        // Re-align with the original query order.
        let mut results: Vec<Vec<Option<u64>>> = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // x, o are node labels
        for x in 0..n {
            let mut answers = vec![None; queries[x].len()];
            for o in 0..n {
                for (k, &qi) in positions[x][o].iter().enumerate() {
                    let off = o * m + k * 8;
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(&gathered[x][off..off + 8]);
                    let v = u64::from_le_bytes(buf);
                    answers[qi] = if v == NONE_SENTINEL { None } else { Some(v) };
                }
            }
            results.push(answers);
        }
        results
    }
}

fn run_exchange(
    d: u32,
    dims: &[u32],
    memories: Vec<Vec<u8>>,
    m: usize,
    transport: Transport,
) -> Vec<Vec<u8>> {
    match transport {
        Transport::Threads => thread_complete_exchange(d, dims, memories, m),
        Transport::Reference => lockstep::run(d, dims, memories, m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_and_queries(d: u32) -> (DistributedTable, Vec<Vec<u64>>) {
        let n = 1usize << d;
        let entries: Vec<(u64, u64)> = (0..200u64).map(|k| (k * 3, k * 3 + 1000)).collect();
        let table = DistributedTable::new(d, &entries);
        // Each node queries a mix of present and absent keys.
        let queries: Vec<Vec<u64>> =
            (0..n as u64).map(|x| (0..20u64).map(|i| (x * 7 + i * 5) % 700).collect()).collect();
        (table, queries)
    }

    #[test]
    fn batch_matches_oracle() {
        for d in [1u32, 2, 3] {
            let (table, queries) = table_and_queries(d);
            let answers = table.batch_lookup(&queries, 32, None, Transport::Reference);
            for (x, qs) in queries.iter().enumerate() {
                for (i, &k) in qs.iter().enumerate() {
                    assert_eq!(answers[x][i], table.get(k), "d={d} node {x} query {k}");
                }
            }
        }
    }

    #[test]
    fn threads_match_reference() {
        let (table, queries) = table_and_queries(3);
        let a = table.batch_lookup(&queries, 32, None, Transport::Threads);
        let b = table.batch_lookup(&queries, 32, None, Transport::Reference);
        assert_eq!(a, b);
    }

    #[test]
    fn present_and_absent_keys() {
        let table = DistributedTable::new(2, &[(0, 100), (1, 101), (5, 105)]);
        assert_eq!(table.get(0), Some(100));
        assert_eq!(table.get(5), Some(105));
        assert_eq!(table.get(2), None);
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        let queries = vec![vec![0, 2], vec![5], vec![], vec![1, 1, 7]];
        let answers = table.batch_lookup(&queries, 8, Some(&[1, 1]), Transport::Reference);
        assert_eq!(answers[0], vec![Some(100), None]);
        assert_eq!(answers[1], vec![Some(105)]);
        assert!(answers[2].is_empty());
        assert_eq!(answers[3], vec![Some(101), Some(101), None]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_overflow_is_detected() {
        let table = DistributedTable::new(1, &[(0, 1)]);
        // 3 queries to owner 0 with capacity 2.
        let queries = vec![vec![0, 2, 4], vec![]];
        let _ = table.batch_lookup(&queries, 2, Some(&[1]), Transport::Reference);
    }

    #[test]
    fn owner_partitioning() {
        let table = DistributedTable::new(3, &[]);
        for k in 0..64u64 {
            assert_eq!(table.owner(k), (k % 8) as usize);
        }
    }
}
