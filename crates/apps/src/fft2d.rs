//! Distributed 2-D FFT by the transpose method.
//!
//! `N x N` complex data (`N = 2^d * r`) distributed in row bands:
//! FFT each local row, transpose via complete exchange, FFT each local
//! row again (formerly the columns), transpose back. Two complete
//! exchanges of `2 * 8 * r^2`-byte blocks — the pattern Section 3 of
//! the paper attributes to the parallel pseudospectral method.

use crate::fft::{fft_in_place, Complex, Direction};
use crate::transpose::Transport;
use mce_core::fabric::lockstep;
use mce_core::planner::best_plan;
use mce_core::thread_fabric::thread_complete_exchange;
use mce_model::MachineParams;

/// Row-band-distributed complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexBands {
    /// Cube dimension.
    pub d: u32,
    /// Rows per node.
    pub r: usize,
    /// Per-node data, `r * N` complex values, row-major.
    pub bands: Vec<Vec<Complex>>,
}

impl ComplexBands {
    /// Side length.
    pub fn n(&self) -> usize {
        (1usize << self.d) * self.r
    }

    /// Distribute a dense row-major matrix.
    pub fn from_dense(d: u32, r: usize, dense: &[Complex]) -> Self {
        let nodes = 1usize << d;
        let n = nodes * r;
        assert_eq!(dense.len(), n * n);
        ComplexBands {
            d,
            r,
            bands: (0..nodes).map(|i| dense[i * r * n..(i + 1) * r * n].to_vec()).collect(),
        }
    }

    /// Reassemble a dense matrix.
    pub fn to_dense(&self) -> Vec<Complex> {
        let mut out = Vec::with_capacity(self.n() * self.n());
        for b in &self.bands {
            out.extend_from_slice(b);
        }
        out
    }
}

fn pack(band: &[Complex], r: usize, nodes: usize) -> Vec<u8> {
    let n = nodes * r;
    let m = r * r * 16;
    let mut mem = vec![0u8; nodes * m];
    for j in 0..nodes {
        for a in 0..r {
            for b in 0..r {
                let z = band[a * n + j * r + b];
                let off = j * m + (a * r + b) * 16;
                mem[off..off + 8].copy_from_slice(&z.re.to_le_bytes());
                mem[off + 8..off + 16].copy_from_slice(&z.im.to_le_bytes());
            }
        }
    }
    mem
}

fn unpack_transposed(mem: &[u8], r: usize, nodes: usize) -> Vec<Complex> {
    let n = nodes * r;
    let m = r * r * 16;
    let mut band = vec![Complex::default(); r * n];
    for p in 0..nodes {
        for a in 0..r {
            for b in 0..r {
                let off = p * m + (a * r + b) * 16;
                let mut re = [0u8; 8];
                let mut im = [0u8; 8];
                re.copy_from_slice(&mem[off..off + 8]);
                im.copy_from_slice(&mem[off + 8..off + 16]);
                band[b * n + p * r + a] =
                    Complex::new(f64::from_le_bytes(re), f64::from_le_bytes(im));
            }
        }
    }
    band
}

/// Transpose the distributed complex matrix (complete exchange).
pub fn transpose_complex(
    data: &ComplexBands,
    dims: Option<&[u32]>,
    transport: Transport,
) -> ComplexBands {
    let nodes = 1usize << data.d;
    let m = data.r * data.r * 16;
    let planned;
    let dims: &[u32] = match dims {
        Some(dims) => dims,
        None => {
            planned = best_plan(&MachineParams::ipsc860(), data.d, m).dims;
            &planned
        }
    };
    let memories: Vec<Vec<u8>> = data.bands.iter().map(|b| pack(b, data.r, nodes)).collect();
    let exchanged = match transport {
        Transport::Threads => thread_complete_exchange(data.d, dims, memories, m),
        Transport::Reference => lockstep::run(data.d, dims, memories, m),
    };
    ComplexBands {
        d: data.d,
        r: data.r,
        bands: exchanged.iter().map(|mem| unpack_transposed(mem, data.r, nodes)).collect(),
    }
}

/// Distributed 2-D FFT. Returns data in the original row-band layout
/// (a final transpose restores orientation).
pub fn fft2d_distributed(
    data: &ComplexBands,
    dir: Direction,
    dims: Option<&[u32]>,
    transport: Transport,
) -> ComplexBands {
    let n = data.n();
    let mut cur = data.clone();
    // Row FFTs.
    for band in cur.bands.iter_mut() {
        for row in band.chunks_mut(n) {
            fft_in_place(row, dir);
        }
    }
    // Transpose, column FFTs (as rows), transpose back.
    let mut t = transpose_complex(&cur, dims, transport);
    for band in t.bands.iter_mut() {
        for row in band.chunks_mut(n) {
            fft_in_place(row, dir);
        }
    }
    transpose_complex(&t, dims, transport)
}

/// Naive sequential 2-D DFT oracle.
pub fn dft2d_naive(n: usize, data: &[Complex], dir: Direction) -> Vec<Complex> {
    use crate::fft::dft_naive;
    // Rows.
    let mut rows: Vec<Complex> = Vec::with_capacity(n * n);
    for i in 0..n {
        rows.extend(dft_naive(&data[i * n..(i + 1) * n], dir));
    }
    // Columns.
    let mut out = vec![Complex::default(); n * n];
    for j in 0..n {
        let col: Vec<Complex> = (0..n).map(|i| rows[i * n + j]).collect();
        let f = dft_naive(&col, dir);
        for i in 0..n {
            out[i * n + j] = f[i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(d: u32, r: usize) -> ComplexBands {
        let n = (1usize << d) * r;
        let dense: Vec<Complex> =
            (0..n * n).map(|k| Complex::new((k % 7) as f64 - 3.0, (k % 5) as f64 * 0.5)).collect();
        ComplexBands::from_dense(d, r, &dense)
    }

    fn close(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (*x - *y).abs() < tol)
    }

    #[test]
    fn matches_naive_2d_dft() {
        for (d, r) in [(1u32, 2usize), (2, 2), (2, 4)] {
            let data = sample(d, r);
            let n = data.n();
            let fast = fft2d_distributed(&data, Direction::Forward, None, Transport::Reference);
            let slow = dft2d_naive(n, &data.to_dense(), Direction::Forward);
            assert!(close(&fast.to_dense(), &slow, 1e-8 * (n * n) as f64), "d={d} r={r}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        let data = sample(3, 2);
        let f = fft2d_distributed(&data, Direction::Forward, None, Transport::Reference);
        let back = fft2d_distributed(&f, Direction::Inverse, None, Transport::Reference);
        assert!(close(&back.to_dense(), &data.to_dense(), 1e-8));
    }

    #[test]
    fn threads_match_reference() {
        let data = sample(2, 4);
        let a = fft2d_distributed(&data, Direction::Forward, None, Transport::Threads);
        let b = fft2d_distributed(&data, Direction::Forward, None, Transport::Reference);
        assert!(close(&a.to_dense(), &b.to_dense(), 1e-12));
    }

    #[test]
    fn transpose_complex_is_involution() {
        let data = sample(2, 3);
        let tt = transpose_complex(
            &transpose_complex(&data, None, Transport::Reference),
            None,
            Transport::Reference,
        );
        assert_eq!(tt, data);
    }
}
