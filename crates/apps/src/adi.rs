//! Alternating Directions Implicit (ADI) heat-equation solver.
//!
//! Peaceman–Rachford splitting for `u_t = u_xx + u_yy` on the unit
//! square with homogeneous Dirichlet boundaries (paper Section 3,
//! citing Peaceman & Rachford 1955 and Douglas & Gunn 1964). Each time
//! step is two half-steps:
//!
//! 1. implicit in `x`: `(I - μ δ²_x) u* = (I + μ δ²_y) u^k` — one
//!    tridiagonal solve per grid **row**;
//! 2. implicit in `y`: `(I - μ δ²_y) u^{k+1} = (I + μ δ²_x) u*` — one
//!    tridiagonal solve per grid **column**.
//!
//! With the grid distributed in row bands, the column half-step is
//! done by **transposing the grid** (a complete exchange), solving
//! rows, and transposing back — "necessitating the heavy use of a
//! transpose procedure", which is exactly why the paper cares about
//! the exchange's speed.

use crate::transpose::{transpose_distributed, BandMatrix, Transport};
use crate::tridiag::solve_constant;

/// Distributed ADI solver state.
#[derive(Debug, Clone)]
pub struct AdiSolver {
    /// Current grid, row-band distributed. Interior values only
    /// (boundaries are implicit zeros).
    pub grid: BandMatrix,
    /// `μ = Δt / (2 h²)`, the half-step diffusion number.
    pub mu: f64,
    /// Exchange partition (None = planned).
    pub dims: Option<Vec<u32>>,
    /// Transport for the transposes.
    pub transport: Transport,
}

/// Apply `(I + μ δ²) ` along rows of a band: `v_i = u_i + μ (u_{i,j-1}
/// - 2 u_{i,j} + u_{i,j+1})` with zero boundaries.
fn explicit_rows(band: &[f64], n: usize, mu: f64) -> Vec<f64> {
    let rows = band.len() / n;
    let mut out = vec![0.0f64; band.len()];
    for i in 0..rows {
        for j in 0..n {
            let u = band[i * n + j];
            let l = if j > 0 { band[i * n + j - 1] } else { 0.0 };
            let r = if j + 1 < n { band[i * n + j + 1] } else { 0.0 };
            out[i * n + j] = u + mu * (l - 2.0 * u + r);
        }
    }
    out
}

/// Solve `(I - μ δ²) x = rhs` along every row of a band.
fn implicit_rows(band: &[f64], n: usize, mu: f64) -> Vec<f64> {
    let rows = band.len() / n;
    let mut out = vec![0.0f64; band.len()];
    for i in 0..rows {
        let x = solve_constant(-mu, 1.0 + 2.0 * mu, -mu, &band[i * n..(i + 1) * n]);
        out[i * n..(i + 1) * n].copy_from_slice(&x);
    }
    out
}

impl AdiSolver {
    /// Create a solver over an initial interior grid.
    pub fn new(grid: BandMatrix, mu: f64) -> Self {
        AdiSolver { grid, mu, dims: None, transport: Transport::Reference }
    }

    /// Select the exchange partition explicitly.
    pub fn with_dims(mut self, dims: Vec<u32>) -> Self {
        self.dims = Some(dims);
        self
    }

    /// Use threaded transposes.
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Advance one full ADI time step (two half-steps, two transposes).
    pub fn step(&mut self) {
        let n = self.grid.n();
        let mu = self.mu;
        let dims = self.dims.as_deref();
        // Half-step 1 needs (I + μ δ²_y) u: δ²_y couples rows — do it
        // in transposed orientation, then solve rows in natural
        // orientation.
        let t = transpose_distributed(&self.grid, dims, self.transport);
        let rhs_t = BandMatrix {
            d: t.d,
            r: t.r,
            bands: t.bands.iter().map(|b| explicit_rows(b, n, mu)).collect(),
        };
        let rhs = transpose_distributed(&rhs_t, dims, self.transport);
        let star = BandMatrix {
            d: rhs.d,
            r: rhs.r,
            bands: rhs.bands.iter().map(|b| implicit_rows(b, n, mu)).collect(),
        };
        // Half-step 2: (I + μ δ²_x) u* along rows, then implicit in y
        // via transpose, solve rows, transpose back.
        let rhs2 = BandMatrix {
            d: star.d,
            r: star.r,
            bands: star.bands.iter().map(|b| explicit_rows(b, n, mu)).collect(),
        };
        let rhs2_t = transpose_distributed(&rhs2, dims, self.transport);
        let next_t = BandMatrix {
            d: rhs2_t.d,
            r: rhs2_t.r,
            bands: rhs2_t.bands.iter().map(|b| implicit_rows(b, n, mu)).collect(),
        };
        self.grid = transpose_distributed(&next_t, dims, self.transport);
    }

    /// Max-norm of the grid.
    pub fn max_norm(&self) -> f64 {
        self.grid.bands.iter().flat_map(|b| b.iter()).fold(0.0f64, |acc, &v| acc.max(v.abs()))
    }
}

/// Sequential reference: one full ADI step on a dense grid.
pub fn adi_step_dense(n: usize, grid: &[f64], mu: f64) -> Vec<f64> {
    // (I + μ δ²_y) u.
    let mut rhs = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let u = grid[i * n + j];
            let up = if i > 0 { grid[(i - 1) * n + j] } else { 0.0 };
            let dn = if i + 1 < n { grid[(i + 1) * n + j] } else { 0.0 };
            rhs[i * n + j] = u + mu * (up - 2.0 * u + dn);
        }
    }
    // (I - μ δ²_x) u* = rhs, row solves.
    let mut star = vec![0.0f64; n * n];
    for i in 0..n {
        let x = solve_constant(-mu, 1.0 + 2.0 * mu, -mu, &rhs[i * n..(i + 1) * n]);
        star[i * n..(i + 1) * n].copy_from_slice(&x);
    }
    // (I + μ δ²_x) u*.
    let mut rhs2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let u = star[i * n + j];
            let l = if j > 0 { star[i * n + j - 1] } else { 0.0 };
            let r = if j + 1 < n { star[i * n + j + 1] } else { 0.0 };
            rhs2[i * n + j] = u + mu * (l - 2.0 * u + r);
        }
    }
    // (I - μ δ²_y) u' = rhs2, column solves.
    let mut out = vec![0.0f64; n * n];
    for j in 0..n {
        let col: Vec<f64> = (0..n).map(|i| rhs2[i * n + j]).collect();
        let x = solve_constant(-mu, 1.0 + 2.0 * mu, -mu, &col);
        for i in 0..n {
            out[i * n + j] = x[i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump_grid(d: u32, r: usize) -> BandMatrix {
        let n = (1usize << d) * r;
        let mut dense = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let x = (i + 1) as f64 / (n + 1) as f64;
                let y = (j + 1) as f64 / (n + 1) as f64;
                dense[i * n + j] =
                    (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin();
            }
        }
        BandMatrix::from_dense(d, r, &dense)
    }

    #[test]
    fn distributed_matches_dense_reference() {
        let d = 2u32;
        let r = 3usize;
        let mut solver = AdiSolver::new(bump_grid(d, r), 0.3);
        let mut dense = solver.grid.to_dense();
        let n = solver.grid.n();
        for _ in 0..3 {
            solver.step();
            dense = adi_step_dense(n, &dense, 0.3);
        }
        let got = solver.grid.to_dense();
        for (a, b) in got.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn heat_decays_monotonically() {
        let mut solver = AdiSolver::new(bump_grid(2, 2), 0.4);
        let mut prev = solver.max_norm();
        assert!(prev > 0.9);
        for _ in 0..10 {
            solver.step();
            let cur = solver.max_norm();
            assert!(cur < prev, "heat must decay: {cur} vs {prev}");
            prev = cur;
        }
    }

    #[test]
    fn decay_rate_matches_fourier_mode() {
        // The (1,1) sine mode is an eigenvector; Peaceman–Rachford
        // damps it by ((1 - μλ)/(1 + μλ))² per step with
        // λ = 4 sin²(π h / 2) / h²-scaled ... in our unscaled grid
        // δ² has eigenvalue -4 sin²(π / (2(n+1))) per direction.
        let d = 2u32;
        let r = 4usize;
        let n = ((1usize << d) * r) as f64;
        let mu = 0.25;
        let lam = 4.0 * (std::f64::consts::PI / (2.0 * (n + 1.0))).sin().powi(2);
        let factor = ((1.0 - mu * lam) / (1.0 + mu * lam)).powi(2);
        let mut solver = AdiSolver::new(bump_grid(d, r), mu);
        let before = solver.max_norm();
        solver.step();
        let after = solver.max_norm();
        assert!(
            (after / before - factor).abs() < 1e-6,
            "decay {} vs theory {}",
            after / before,
            factor
        );
    }

    #[test]
    fn explicit_partition_and_threads_agree() {
        let grid = bump_grid(2, 2);
        let mut a = AdiSolver::new(grid.clone(), 0.3).with_dims(vec![1, 1]);
        let mut b = AdiSolver::new(grid, 0.3).with_transport(Transport::Threads);
        a.step();
        b.step();
        let (ga, gb) = (a.grid.to_dense(), b.grid.to_dense());
        for (x, y) in ga.iter().zip(&gb) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
