//! Distributed matrix-vector multiplication.
//!
//! The remaining §3 motivating workload: `y = A·x` with `A` row-banded
//! over the cube (as in the transpose mapping of Figure 2) and `x`
//! distributed by the same banding. Each node needs the *whole* vector
//! to form its band of `y`, so the kernel is an **allgather** of the
//! vector pieces — one of the collective patterns this repository
//! builds multiphase algorithms for — followed by a local dense
//! band-times-vector product.

use crate::transpose::BandMatrix;
use mce_core::collectives::{build_allgather_programs, verify_allgather};
use mce_core::exec_data::execute;

/// A vector distributed in `r`-element pieces across `2^d` nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct BandVector {
    /// Cube dimension.
    pub d: u32,
    /// Elements per node.
    pub r: usize,
    /// Per-node pieces.
    pub pieces: Vec<Vec<f64>>,
}

impl BandVector {
    /// Distribute a dense vector.
    pub fn from_dense(d: u32, r: usize, dense: &[f64]) -> Self {
        let nodes = 1usize << d;
        assert_eq!(dense.len(), nodes * r);
        BandVector {
            d,
            r,
            pieces: (0..nodes).map(|i| dense[i * r..(i + 1) * r].to_vec()).collect(),
        }
    }

    /// Reassemble the dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        self.pieces.iter().flatten().copied().collect()
    }
}

/// Allgather the vector pieces so every node holds the full vector.
///
/// Runs the multiphase allgather (partition `dims`, `None` = binomial
/// `{1,…,1}`, which E11 shows is always optimal) through the untimed
/// executor, moving real bytes.
pub fn allgather_vector(v: &BandVector, dims: Option<&[u32]>) -> Vec<Vec<f64>> {
    let nodes = 1usize << v.d;
    let m = v.r * 8;
    let ones = vec![1u32; v.d as usize];
    let dims = dims.unwrap_or(&ones);
    // Memories in allgather layout: own piece at slot `self`.
    let memories: Vec<Vec<u8>> = (0..nodes)
        .map(|x| {
            let mut mem = vec![0u8; nodes * m];
            for (k, &val) in v.pieces[x].iter().enumerate() {
                mem[x * m + k * 8..x * m + (k + 1) * 8].copy_from_slice(&val.to_le_bytes());
            }
            mem
        })
        .collect();
    let programs = build_allgather_programs(v.d, dims, m);
    let out = execute(&programs, memories).expect("allgather deadlocked");
    out.iter()
        .map(|mem| {
            (0..nodes * v.r)
                .map(|k| {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(&mem[k * 8..(k + 1) * 8]);
                    f64::from_le_bytes(buf)
                })
                .collect()
        })
        .collect()
}

/// Distributed `y = A·x`: allgather `x`, multiply each band locally.
pub fn matvec_distributed(a: &BandMatrix, x: &BandVector, dims: Option<&[u32]>) -> BandVector {
    assert_eq!(a.d, x.d, "matrix and vector must share the cube");
    assert_eq!(a.r, x.r, "banding must agree");
    let n = a.n();
    let full_x = allgather_vector(x, dims);
    let pieces = a
        .bands
        .iter()
        .zip(&full_x)
        .map(|(band, xv)| (0..a.r).map(|i| (0..n).map(|j| band[i * n + j] * xv[j]).sum()).collect())
        .collect();
    BandVector { d: a.d, r: a.r, pieces }
}

/// Sequential reference.
pub fn matvec_dense(n: usize, a: &[f64], x: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), n * n);
    assert_eq!(x.len(), n);
    (0..n).map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum()).collect()
}

/// Convenience: sanity-check that the allgather builder used here
/// moves stamped data correctly for the given configuration (test
/// hook; see also `mce-core::collectives` tests).
pub fn allgather_self_check(d: u32, m: usize) -> bool {
    use mce_core::collectives::allgather_memories;
    let programs = build_allgather_programs(d, &vec![1; d as usize], m);
    match execute(&programs, allgather_memories(d, m)) {
        Ok(mems) => verify_allgather(d, m, &mems),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_system(d: u32, r: usize) -> (BandMatrix, BandVector, Vec<f64>, Vec<f64>) {
        let n = (1usize << d) * r;
        let a: Vec<f64> = (0..n * n).map(|k| ((k * 7) % 13) as f64 - 6.0).collect();
        let x: Vec<f64> = (0..n).map(|k| (k as f64 * 0.3).cos()).collect();
        (BandMatrix::from_dense(d, r, &a), BandVector::from_dense(d, r, &x), a, x)
    }

    #[test]
    fn matches_dense_reference() {
        for (d, r) in [(1u32, 2usize), (2, 3), (3, 2), (4, 1)] {
            let (am, xv, a, x) = test_system(d, r);
            let n = am.n();
            let y = matvec_distributed(&am, &xv, None);
            let expect = matvec_dense(n, &a, &x);
            for (got, want) in y.to_dense().iter().zip(&expect) {
                assert!((got - want).abs() < 1e-9, "d={d} r={r}");
            }
        }
    }

    #[test]
    fn partition_choice_does_not_change_result() {
        let (am, xv, a, x) = test_system(3, 2);
        let expect = matvec_dense(am.n(), &a, &x);
        for dims in [vec![3u32], vec![1, 2], vec![2, 1], vec![1, 1, 1]] {
            let y = matvec_distributed(&am, &xv, Some(&dims));
            for (got, want) in y.to_dense().iter().zip(&expect) {
                assert!((got - want).abs() < 1e-9, "dims {dims:?}");
            }
        }
    }

    #[test]
    fn allgather_replicates_vector_everywhere() {
        let (_, xv, _, x) = test_system(3, 4);
        let full = allgather_vector(&xv, None);
        assert_eq!(full.len(), 8);
        for copy in &full {
            for (got, want) in copy.iter().zip(&x) {
                assert!((got - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn self_check_hook() {
        assert!(allgather_self_check(4, 8));
    }

    #[test]
    fn vector_roundtrip() {
        let x: Vec<f64> = (0..12).map(|k| k as f64).collect();
        let v = BandVector::from_dense(2, 3, &x);
        assert_eq!(v.to_dense(), x);
    }
}
