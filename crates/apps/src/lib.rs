//! Applications built on the multiphase complete exchange.
//!
//! Section 3 of the paper motivates the complete exchange with four
//! workloads; this crate implements all of them on top of the
//! `mce-core` fabrics:
//!
//! * [`transpose`] — distributed block-matrix transpose, the pattern
//!   "at the heart of many important algorithms";
//! * [`fft`] / [`fft2d`] — a from-scratch radix-2 FFT and the
//!   transpose-based distributed 2-D FFT (Pelz's pseudospectral
//!   pattern);
//! * [`tridiag`] / [`adi`] — the Thomas tridiagonal solver and the
//!   Peaceman–Rachford Alternating Directions Implicit method, which
//!   "requires access to the matrix by rows and by columns in
//!   successive phases, necessitating the heavy use of a transpose
//!   procedure";
//! * [`matvec`] — distributed matrix-vector multiply (allgather +
//!   local band product), the fourth §3 workload;
//! * [`lookup`] — distributed table lookup (Saltz et al.'s runtime
//!   scheduling pattern): route query batches with one exchange, route
//!   answers back with another.
//!
//! Each application runs the same code over real threads
//! (`mce_core::thread_fabric`) and can plan its exchange partition
//! with `mce_core::planner` from its actual block size.

pub mod adi;
pub mod fft;
pub mod fft2d;
pub mod lookup;
pub mod matvec;
pub mod transpose;
pub mod tridiag;

pub use adi::AdiSolver;
pub use fft2d::fft2d_distributed;
pub use lookup::DistributedTable;
pub use matvec::{matvec_distributed, BandVector};
pub use transpose::{transpose_distributed, BandMatrix};
