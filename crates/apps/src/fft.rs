//! Radix-2 complex FFT, implemented from scratch.
//!
//! The 2-D FFT application (paper Section 3, citing Pelz's parallel
//! pseudospectral method) needs a 1-D FFT as its local kernel; this
//! module provides an iterative in-place radix-2 Cooley–Tukey
//! transform plus the naive DFT used as a test oracle.

/// A complex number (no external dependencies).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^(i theta)`.
    pub fn cis(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex multiplication (also available via `*`).
    #[inline]
    #[allow(clippy::should_implement_trait)] // `*` is implemented too
    pub fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::mul(self, o)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

/// Direction of the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT (negative exponent).
    Forward,
    /// Inverse DFT (positive exponent), scaled by `1/n`.
    Inverse,
}

/// In-place iterative radix-2 FFT. `data.len()` must be a power of two.
pub fn fft_in_place(data: &mut [Complex], dir: Direction) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2].mul(w);
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for z in data.iter_mut() {
            z.re *= inv;
            z.im *= inv;
        }
    }
}

/// Naive `O(n^2)` DFT, the oracle for tests.
pub fn dft_naive(data: &[Complex], dir: Direction) -> Vec<Complex> {
    let n = data.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex::default(); n];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex::default();
        for (j, &x) in data.iter().enumerate() {
            let ang = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            acc = acc + x.mul(Complex::cis(ang));
        }
        if dir == Direction::Inverse {
            acc.re /= n as f64;
            acc.im /= n as f64;
        }
        *slot = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (*x - *y).abs() < tol)
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n).map(|k| Complex::new(k as f64 * 0.25 - 1.0, (k % 3) as f64)).collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let input = ramp(n);
            let mut fast = input.clone();
            fft_in_place(&mut fast, Direction::Forward);
            let slow = dft_naive(&input, Direction::Forward);
            assert!(close(&fast, &slow, 1e-9 * n as f64), "n={n}");
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [2usize, 8, 128, 1024] {
            let input = ramp(n);
            let mut data = input.clone();
            fft_in_place(&mut data, Direction::Forward);
            fft_in_place(&mut data, Direction::Inverse);
            assert!(close(&data, &input, 1e-9 * n as f64), "n={n}");
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut data, Direction::Forward);
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let input = ramp(64);
        let mut freq = input.clone();
        fft_in_place(&mut freq, Direction::Forward);
        let e_time: f64 = input.iter().map(|z| z.abs() * z.abs()).sum();
        let e_freq: f64 = freq.iter().map(|z| z.abs() * z.abs()).sum::<f64>() / 64.0;
        assert!((e_time - e_freq).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut data = vec![Complex::default(); 12];
        fft_in_place(&mut data, Direction::Forward);
    }
}
