//! Thomas algorithm for tridiagonal systems.
//!
//! The local solver kernel of the ADI application: each grid line's
//! implicit half-step is a tridiagonal solve.

/// Solve the tridiagonal system with constant diagonals
/// `(a, b, c)`: `a x[i-1] + b x[i] + c x[i+1] = rhs[i]`, homogeneous
/// Dirichlet conditions outside the range.
///
/// Returns the solution vector. Requires `|b| > |a| + |c|` (diagonal
/// dominance) for stability — which the ADI half-steps always satisfy.
pub fn solve_constant(a: f64, b: f64, c: f64, rhs: &[f64]) -> Vec<f64> {
    assert!(b.abs() > a.abs() + c.abs(), "matrix must be diagonally dominant");
    let n = rhs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut cp = vec![0.0f64; n];
    let mut dp = vec![0.0f64; n];
    cp[0] = c / b;
    dp[0] = rhs[0] / b;
    for i in 1..n {
        let denom = b - a * cp[i - 1];
        cp[i] = c / denom;
        dp[i] = (rhs[i] - a * dp[i - 1]) / denom;
    }
    let mut x = vec![0.0f64; n];
    x[n - 1] = dp[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = dp[i] - cp[i] * x[i + 1];
    }
    x
}

/// Solve a general tridiagonal system given the three diagonals
/// (`lower[0]` and `upper[n-1]` are ignored).
pub fn solve(lower: &[f64], diag: &[f64], upper: &[f64], rhs: &[f64]) -> Vec<f64> {
    let n = rhs.len();
    assert!(lower.len() == n && diag.len() == n && upper.len() == n);
    if n == 0 {
        return Vec::new();
    }
    let mut cp = vec![0.0f64; n];
    let mut dp = vec![0.0f64; n];
    assert!(diag[0] != 0.0, "singular pivot");
    cp[0] = upper[0] / diag[0];
    dp[0] = rhs[0] / diag[0];
    for i in 1..n {
        let denom = diag[i] - lower[i] * cp[i - 1];
        assert!(denom != 0.0, "singular pivot at row {i}");
        cp[i] = upper[i] / denom;
        dp[i] = (rhs[i] - lower[i] * dp[i - 1]) / denom;
    }
    let mut x = vec![0.0f64; n];
    x[n - 1] = dp[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = dp[i] - cp[i] * x[i + 1];
    }
    x
}

/// Multiply a constant-diagonal tridiagonal matrix by a vector
/// (homogeneous Dirichlet outside), for residual checks.
pub fn apply_constant(a: f64, b: f64, c: f64, x: &[f64]) -> Vec<f64> {
    let n = x.len();
    (0..n)
        .map(|i| {
            let left = if i > 0 { a * x[i - 1] } else { 0.0 };
            let right = if i + 1 < n { c * x[i + 1] } else { 0.0 };
            left + b * x[i] + right
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // 2x2: [2 1; 1 2] x = [3, 3] -> x = [1, 1].
        let x = solve(&[0.0, 1.0], &[2.0, 2.0], &[1.0, 0.0], &[3.0, 3.0]);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_solver_satisfies_residual() {
        let (a, b, c) = (-1.0, 4.0, -1.5);
        let rhs: Vec<f64> = (0..33).map(|k| ((k * 7) % 11) as f64 - 5.0).collect();
        let x = solve_constant(a, b, c, &rhs);
        let back = apply_constant(a, b, c, &x);
        for (r, br) in rhs.iter().zip(&back) {
            assert!((r - br).abs() < 1e-9, "{r} vs {br}");
        }
    }

    #[test]
    fn general_matches_constant() {
        let (a, b, c) = (-0.5, 3.0, -0.25);
        let n = 17;
        let rhs: Vec<f64> = (0..n).map(|k| (k as f64).sin()).collect();
        let x1 = solve_constant(a, b, c, &rhs);
        let lower = vec![a; n];
        let diag = vec![b; n];
        let upper = vec![c; n];
        let x2 = solve(&lower, &diag, &upper, &rhs);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(solve_constant(-1.0, 3.0, -1.0, &[]).is_empty());
        let x = solve_constant(-1.0, 4.0, -1.0, &[8.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "diagonally dominant")]
    fn rejects_non_dominant() {
        let _ = solve_constant(-1.0, 1.5, -1.0, &[1.0, 2.0]);
    }
}
