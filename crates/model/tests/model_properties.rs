//! Property suite for the analytic model's internal identities, over
//! *random* machine parameters — not just the three presets:
//!
//! * the multiphase formula recovers both classical algorithms as its
//!   special cases on overhead-free machines (`{1,...,1}` ≡ Standard
//!   Exchange, `{d}` ≡ Optimal Circuit Switched);
//! * the crossover block size genuinely separates `standard_wins` on
//!   both sides;
//! * every `conditioned_*` function under a no-op condition is
//!   **bit-equal** to its unconditioned counterpart — the model-side
//!   mirror of the engine guarantee pinned by `netcond_properties`.

use mce_model::conditioned::ConditionSummary;
use mce_model::{
    best_partition, conditioned_best_partition, conditioned_crossover_block_size,
    conditioned_multiphase_saf_time, conditioned_multiphase_time, conditioned_optimal_cs_time,
    conditioned_partial_exchange_saf_time, conditioned_partial_exchange_time,
    conditioned_standard_exchange_time, conditioned_standard_wins, crossover_block_size,
    multiphase_saf_time, multiphase_time, optimal_cs_time, partial_exchange_time,
    standard_exchange_time, standard_wins, MachineParams,
};
use mce_partitions::partitions;
use proptest::prelude::*;

/// A random machine from integer draws (the vendored proptest has no
/// float strategies): λ in [0, 500], λ₀ ≤ λ, τ in (0, 5], δ in
/// [0, 50], ρ in [0, 5], barrier in [0, 300]/dim.
#[allow(clippy::too_many_arguments)]
fn machine(
    lambda_m: u64,
    lambda0_frac: u64,
    tau_m: u64,
    delta_m: u64,
    rho_m: u64,
    barrier_m: u64,
    pairwise_sync: bool,
) -> MachineParams {
    let lambda = lambda_m as f64 / 1000.0;
    MachineParams {
        name: "random".to_string(),
        lambda,
        lambda_zero: lambda * (lambda0_frac as f64 / 100.0),
        tau: tau_m.max(1) as f64 / 1000.0,
        delta: delta_m as f64 / 1000.0,
        rho: rho_m as f64 / 1000.0,
        barrier_per_dim: barrier_m as f64 / 1000.0,
        pairwise_sync,
        unforced_threshold: 100,
    }
}

/// The same machine with every per-exchange overhead the raw Eqs. 1-2
/// do not model turned off.
fn overhead_free(mut p: MachineParams) -> MachineParams {
    p.pairwise_sync = false;
    p.barrier_per_dim = 0.0;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On an overhead-free machine the multiphase formula's special
    /// cases are the two classical algorithms, for any parameters:
    /// `{1,...,1}` prices exactly Eq. 1 and `{d}` exactly Eq. 2.
    #[test]
    fn multiphase_special_cases_recover_classical_algorithms(
        lambda_m in 0u64..500_000,
        lambda0_frac in 0u64..=100,
        tau_m in 1u64..5_000,
        delta_m in 0u64..50_000,
        rho_m in 0u64..5_000,
        // d = 1 is the degenerate overlap: `[1]` is simultaneously the
        // all-ones and the singleton partition, and the multiphase
        // formula prices it as OCS (its one phase spans the whole cube,
        // so the final shuffle is the identity and is skipped, where
        // Eq. 1 charges it).
        d in 2u32..=8,
        m_tenths in 0u64..4_000,
    ) {
        let p = overhead_free(machine(lambda_m, lambda0_frac, tau_m, delta_m, rho_m, 0, false));
        let m = m_tenths as f64 / 10.0;
        let ones = vec![1u32; d as usize];
        let se = standard_exchange_time(&p, m, d);
        let mp_ones = multiphase_time(&p, m, d, &ones);
        prop_assert!((mp_ones - se).abs() <= 1e-9 * se.max(1.0),
            "{{1;{d}}} {mp_ones} vs SE {se}");
        let ocs = optimal_cs_time(&p, m, d);
        let mp_single = multiphase_time(&p, m, d, &[d]);
        prop_assert!((mp_single - ocs).abs() <= 1e-9 * ocs.max(1.0),
            "{{{d}}} {mp_single} vs OCS {ocs}");
    }

    /// The crossover block size separates `standard_wins` on both
    /// sides, for random machines: strictly below it Standard wins,
    /// strictly above it Optimal does (whenever each side exists).
    #[test]
    fn crossover_separates_standard_wins(
        lambda_m in 1u64..500_000,
        lambda0_frac in 0u64..=100,
        tau_m in 1u64..5_000,
        delta_m in 0u64..50_000,
        rho_m in 1u64..5_000,
        d in 2u32..=10,
    ) {
        let p = overhead_free(machine(lambda_m, lambda0_frac, tau_m, delta_m, rho_m, 0, false));
        let mx = crossover_block_size(&p, d);
        prop_assert!(mx.is_finite() && mx >= 0.0, "crossover {mx}");
        if mx > 1e-6 {
            prop_assert!(standard_wins(&p, mx * 0.5, d), "below crossover {mx}");
        }
        prop_assert!(!standard_wins(&p, mx * 2.0 + 1.0, d), "above crossover {mx}");
        // At the crossover itself the two predictions coincide.
        let ts = standard_exchange_time(&p, mx, d);
        let to = optimal_cs_time(&p, mx, d);
        prop_assert!((ts - to).abs() <= 1e-9 * to.max(1.0), "{ts} vs {to} at {mx}");
    }

    /// Every conditioned entry point under a no-op summary returns the
    /// unconditioned model's result *bit for bit* — for random
    /// machines, dimensions, block sizes and partitions, with every
    /// overhead (sync, barrier) enabled.
    #[test]
    fn conditioned_noop_is_bit_equal_to_unconditioned(
        lambda_m in 0u64..500_000,
        lambda0_frac in 0u64..=100,
        tau_m in 1u64..5_000,
        delta_m in 0u64..50_000,
        rho_m in 0u64..5_000,
        barrier_m in 0u64..300_000,
        sync_bit in 0u8..2,
        d in 2u32..=7,
        m_tenths in 0u64..4_000,
        part_seed in 0u64..1_000,
    ) {
        let p = machine(lambda_m, lambda0_frac, tau_m, delta_m, rho_m, barrier_m, sync_bit == 1);
        let m = m_tenths as f64 / 10.0;
        let cond = ConditionSummary::noop(d);
        prop_assert!(cond.is_noop());

        let all = partitions(d);
        let part = &all[(part_seed % all.len() as u64) as usize];
        let dims = part.parts();
        let di = dims[0];

        prop_assert_eq!(
            conditioned_multiphase_time(&p, m, d, dims, &cond).to_bits(),
            multiphase_time(&p, m, d, dims).to_bits()
        );
        prop_assert_eq!(
            conditioned_standard_exchange_time(&p, m, d, &cond).to_bits(),
            standard_exchange_time(&p, m, d).to_bits()
        );
        prop_assert_eq!(
            conditioned_optimal_cs_time(&p, m, d, &cond).to_bits(),
            optimal_cs_time(&p, m, d).to_bits()
        );
        prop_assert_eq!(
            conditioned_partial_exchange_time(&p, m, d - di, di, d, &cond).to_bits(),
            partial_exchange_time(&p, m, di, d).to_bits()
        );
        prop_assert_eq!(
            conditioned_multiphase_saf_time(&p, m, d, dims, &cond).to_bits(),
            multiphase_saf_time(&p, m, d, dims).to_bits()
        );
        prop_assert_eq!(
            conditioned_partial_exchange_saf_time(&p, m, d - di, di, d, &cond).to_bits(),
            mce_model::saf::partial_exchange_saf_time(&p, m, di, d).to_bits()
        );
        prop_assert_eq!(
            conditioned_crossover_block_size(&p, d, &cond).to_bits(),
            crossover_block_size(&p, d).to_bits()
        );
        prop_assert_eq!(
            conditioned_standard_wins(&p, m, d, &cond),
            standard_wins(&p, m, d)
        );
        let (cp, ct) = conditioned_best_partition(&p, m, d, &cond);
        let (up, ut) = best_partition(&p, m, d);
        prop_assert_eq!(cp, up);
        prop_assert_eq!(ct.to_bits(), ut.to_bits());
    }

    /// A genuinely degrading summary (uniform slowdown > 1) never
    /// predicts a faster exchange than the clean model, for any
    /// machine and partition.
    #[test]
    fn slowdowns_never_speed_predictions_up(
        lambda_m in 0u64..500_000,
        tau_m in 1u64..5_000,
        delta_m in 0u64..50_000,
        rho_m in 0u64..5_000,
        barrier_m in 0u64..300_000,
        sync_bit in 0u8..2,
        d in 2u32..=6,
        m_tenths in 0u64..2_000,
        factor_milli in 1_001u64..6_000,
        part_seed in 0u64..1_000,
    ) {
        let p = machine(lambda_m, 50, tau_m, delta_m, rho_m, barrier_m, sync_bit == 1);
        let m = m_tenths as f64 / 10.0;
        let n = 1usize << d;
        let factor = factor_milli as f64 / 1000.0;
        let cond = ConditionSummary::from_link_factors(d, &vec![factor; n * d as usize]);
        let all = partitions(d);
        let part = &all[(part_seed % all.len() as u64) as usize];
        let dims = part.parts();
        prop_assert!(
            conditioned_multiphase_time(&p, m, d, dims, &cond)
                >= multiphase_time(&p, m, d, dims),
            "slowdown {factor} sped {part} up"
        );
        prop_assert!(
            conditioned_multiphase_saf_time(&p, m, d, dims, &cond)
                >= multiphase_saf_time(&p, m, d, dims)
        );
    }
}
