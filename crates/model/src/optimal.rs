//! Eq. (2): the Optimal Circuit Switched algorithm.

use crate::{average_schedule_distance, MachineParams};

/// Predicted time for the Optimal Circuit Switched algorithm
/// (Schmiermund & Seidel schedule) on a dimension-`d` cube with block
/// size `m` bytes:
///
/// ```text
/// t_OCS(m, d) = (2^d - 1) ( λ + τ m + δ · d 2^(d-1) / (2^d - 1) )
/// ```
///
/// `2^d - 1` transmissions of one block each; at step `i` all pairs are
/// at distance `popcount(i)`, and the distance penalty averages to
/// `d 2^(d-1)/(2^d - 1)` per step. This is the *raw* Eq. (2); for a
/// machine with pairwise-sync/barrier overheads use
/// [`crate::multiphase_time`] with the singleton partition `{d}`.
pub fn optimal_cs_time(p: &MachineParams, m: f64, d: u32) -> f64 {
    assert!(d >= 1, "optimal circuit switched exchange needs d >= 1");
    let steps = ((1u64 << d) - 1) as f64;
    steps * (p.lambda + p.tau * m + p.delta * average_schedule_distance(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_phase_values_from_section_5_1() {
        let p = MachineParams::hypothetical();
        // "The first phase on dimension 2 subcubes with an effective
        // block size of 384 bytes takes 1832 µsec."
        let t1 = optimal_cs_time(&p, 384.0, 2);
        assert_eq!(t1.round() as u64, 1832);
        // The paper prints 6040 µs for the second phase via an
        // effective block of "160" bytes; its own formula gives
        // m·2^(d-di) = 24·4 = 96 bytes:
        let t2_erratum = optimal_cs_time(&p, 160.0, 4);
        assert_eq!(t2_erratum.round() as u64, 6040);
        let t2_formula = optimal_cs_time(&p, 96.0, 4);
        assert_eq!(t2_formula.round() as u64, 5080);
    }

    #[test]
    fn total_distance_cost_is_d_half_n() {
        // The δ contribution over the whole schedule must equal
        // δ · d · 2^(d-1) exactly.
        let mut p = MachineParams::hypothetical();
        p.lambda = 0.0;
        p.tau = 0.0;
        for d in 1..=8u32 {
            let t = optimal_cs_time(&p, 123.0, d);
            let expect = p.delta * (d as f64) * (1u64 << (d - 1)) as f64;
            assert!((t - expect).abs() < 1e-9, "d={d}");
        }
    }

    #[test]
    fn d1_reduces_to_single_exchange() {
        let p = MachineParams::hypothetical();
        let t = optimal_cs_time(&p, 50.0, 1);
        assert!((t - (200.0 + 50.0 + 20.0)).abs() < 1e-9);
    }

    #[test]
    fn grows_with_dimension() {
        let p = MachineParams::ipsc860();
        let mut prev = 0.0;
        for d in 1..=10u32 {
            let t = optimal_cs_time(&p, 64.0, d);
            assert!(t > prev);
            prev = t;
        }
    }
}
