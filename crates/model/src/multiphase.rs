//! Total predicted time of a multiphase plan.

use crate::{partial_exchange_time, MachineParams};

/// Predicted time for the full multiphase complete exchange with
/// partition `dims` (in any order — cost is order-independent) on a
/// dimension-`d` cube with block size `m` bytes.
///
/// This is the sum of [`partial_exchange_time`] over the phases. The
/// special cases recover the two classical algorithms as priced by the
/// implementation model (Eq. 3): `dims = [d]` is Optimal Circuit
/// Switched, `dims = [1; d]` is Standard Exchange.
pub fn multiphase_time(p: &MachineParams, m: f64, d: u32, dims: &[u32]) -> f64 {
    let total: u32 = dims.iter().sum();
    assert_eq!(total, d, "partition {dims:?} does not sum to dimension {d}");
    dims.iter().map(|&di| partial_exchange_time(p, m, di, d)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimal_cs_time, standard_exchange_time};

    #[test]
    fn section_5_1_two_phase_total() {
        // 1832 + 5080 + 2·1536 = 9984 µs (with the phase-2 erratum
        // corrected; the paper prints 10944 via 6040 for phase 2).
        let p = MachineParams::hypothetical();
        let t = multiphase_time(&p, 24.0, 6, &[2, 4]);
        assert_eq!(t.round() as u64, 9984);
        // Either way, substantially faster than Standard Exchange.
        assert!(t < standard_exchange_time(&p, 24.0, 6));
        assert!(10944.0 < standard_exchange_time(&p, 24.0, 6));
    }

    #[test]
    fn order_independence() {
        let p = MachineParams::ipsc860();
        for m in [0.0, 16.0, 100.0] {
            let a = multiphase_time(&p, m, 7, &[2, 2, 3]);
            let b = multiphase_time(&p, m, 7, &[3, 2, 2]);
            let c = multiphase_time(&p, m, 7, &[2, 3, 2]);
            assert!((a - b).abs() < 1e-9 && (b - c).abs() < 1e-9);
        }
    }

    #[test]
    fn singleton_partition_matches_raw_ocs_when_no_overheads() {
        // On the hypothetical machine (no sync, no barrier) the
        // multiphase formula with {d} is exactly Eq. (2).
        let p = MachineParams::hypothetical();
        for d in 1..=7u32 {
            for m in [1.0, 24.0, 333.0] {
                let a = multiphase_time(&p, m, d, &[d]);
                let b = optimal_cs_time(&p, m, d);
                assert!((a - b).abs() < 1e-9, "d={d} m={m}");
            }
        }
    }

    #[test]
    fn all_ones_partition_vs_raw_standard_exchange() {
        // With no overheads, the all-ones multiphase plan performs the
        // same transmissions as Standard Exchange but prices shuffles
        // identically too: d phases, each with shuffle ρ m 2^d, matching
        // Eq. (1)'s d shuffles of ρ m 2^d.
        let p = MachineParams::hypothetical();
        for d in 2..=7u32 {
            let ones = vec![1u32; d as usize];
            for m in [4.0, 24.0] {
                let a = multiphase_time(&p, m, d, &ones);
                let b = standard_exchange_time(&p, m, d);
                assert!((a - b).abs() < 1e-9, "d={d} m={m}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn figure_6_caption_values() {
        // d = 7, m = 40 bytes on the iPSC-860:
        //   Standard {1×7} ≈ Optimal {7} ≈ 0.037 s, {3,4} ≈ 0.016 s.
        let p = MachineParams::ipsc860();
        let t_se = multiphase_time(&p, 40.0, 7, &[1, 1, 1, 1, 1, 1, 1]);
        let t_ocs = multiphase_time(&p, 40.0, 7, &[7]);
        let t_34 = multiphase_time(&p, 40.0, 7, &[3, 4]);
        assert!((t_se / 1e6 - 0.037).abs() < 0.004, "SE {t_se}");
        assert!((t_ocs / 1e6 - 0.037).abs() < 0.004, "OCS {t_ocs}");
        assert!((t_34 / 1e6 - 0.016).abs() < 0.002, "{{3,4}} {t_34}");
        // "more than twice as fast"
        assert!(t_se / t_34 > 2.0);
        assert!(t_ocs / t_34 > 2.0);
    }

    #[test]
    #[should_panic(expected = "does not sum")]
    fn rejects_bad_partition() {
        let p = MachineParams::ipsc860();
        let _ = multiphase_time(&p, 10.0, 6, &[3, 2]);
    }
}
