//! Netcond-aware analytic model: predicted exchange times on a
//! *degraded* cube.
//!
//! The base model (Eqs. 1-3) prices a perfect, homogeneous
//! circuit-switched hypercube. The simulator's network-conditions
//! layer (`mce_simnet::netcond`) degrades that network declaratively —
//! per-link slowdown factors, cable overrides, background-traffic
//! hotspots — and the ROADMAP asks for the analytic side of that
//! story: *predict the conditioned crossover* instead of measuring it.
//!
//! This module prices every algorithm of the base model against a
//! [`ConditionSummary`]: a per-dimension compression of the network
//! state. The summary carries, per cube dimension,
//!
//! * a slowdown-factor distribution ([`DimFactor`]: mean/min/max over
//!   the `2^d` directed links crossing that dimension), matching the
//!   engine's conditioned transmission law `λ + τ·m·max(f_i) +
//!   δ·Σf_i` over the links of a circuit, and
//! * a contention load ([`DimContention`]: what fraction of the
//!   dimension's links carry a background stream, how utilized those
//!   links are, and how long one stream occupancy lasts).
//!
//! Predictions are per *schedule step*: a step with XOR mask `S`
//! prices its transfer with the expected `max`/`Σ` of the factors over
//! the dimensions of `S` (order statistics over the per-dimension
//! spread stand in for the exact per-link draw) and adds the expected
//! contention delay of [`ConditionSummary::step_delay_us`]. Summing
//! the steps of each phase recovers conditioned analogues of every
//! base-model quantity: [`conditioned_multiphase_time`],
//! [`conditioned_standard_exchange_time`] /
//! [`conditioned_optimal_cs_time`] (raw Eqs. 1-2),
//! [`conditioned_crossover_block_size`], [`conditioned_best_partition`]
//! / [`conditioned_optimality_hull`], and the store-and-forward
//! variants.
//!
//! Two contracts anchor the module (both enforced by the property and
//! conformance suites):
//!
//! * **No-op exactness** — a [`ConditionSummary::noop`] (unit factors,
//!   no contention) reproduces the unconditioned model *bit for bit*:
//!   every `conditioned_*` function short-circuits to its unconditioned
//!   counterpart, mirroring the engine guarantee that a no-op
//!   `NetCondition` is bit-identical to an unconditioned run.
//! * **Conformance** — against the simulator the predictions stay
//!   within the per-regime tolerances documented in
//!   `crates/model/README.md` (tight for uniform/per-dimension
//!   slowdowns, looser for seeded heterogeneity and hotspot
//!   contention), and the predicted *winner* among candidate
//!   partitions matches simulation away from the crossover. The
//!   harness lives in `mce_simnet::conformance` and
//!   `crates/simnet/tests/model_conformance.rs`.
//!
//! All predictions remain **affine in the block size** `m` (factors
//! and contention loads are m-independent; the backlog term scales
//! with the step's own affine duration), so crossovers are exact
//! intersections of straight lines, like in the paper.

use crate::{
    best_partition_by, crossover_block_size, multiphase_saf_time, multiphase_time, optimal_cs_time,
    optimality_hull_by, standard_exchange_time, HullFace, MachineParams,
};
use mce_partitions::Partition;
use serde::{Deserialize, Serialize};

/// Slowdown-factor distribution of one cube dimension: statistics of
/// the `2^d` directed-link factors crossing that dimension (`1.0` =
/// nominal speed, `2.0` = twice as slow).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DimFactor {
    /// Mean factor over the dimension's directed links.
    pub mean: f64,
    /// Smallest factor.
    pub min: f64,
    /// Largest factor.
    pub max: f64,
}

impl DimFactor {
    /// The nominal (unit-speed) distribution.
    pub fn unit() -> DimFactor {
        DimFactor { mean: 1.0, min: 1.0, max: 1.0 }
    }

    /// Whether every link of this dimension runs at nominal speed.
    pub fn is_unit(&self) -> bool {
        self.mean == 1.0 && self.min == 1.0 && self.max == 1.0
    }
}

/// Background-traffic load on one cube dimension, compressed from the
/// stream set: `touch` is the fraction of the dimension's directed
/// links that lie on some stream's route, `util` the mean duty cycle
/// of those touched links (occupancy duration over injection period,
/// capped at 1), and `busy_us` the mean duration of one occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DimContention {
    /// Fraction of this dimension's directed links on a stream route.
    pub touch: f64,
    /// Mean utilization of a touched link, in `[0, 1]`.
    pub util: f64,
    /// Mean occupancy duration, µs.
    pub busy_us: f64,
}

impl DimContention {
    /// Whether no stream touches this dimension.
    pub fn is_idle(&self) -> bool {
        self.touch == 0.0 || self.util == 0.0 || self.busy_us == 0.0
    }
}

/// Tuning constants of the contention term, fixed by calibrating the
/// model against the simulator (the conformance harness re-measures
/// the resulting accuracy envelope on every run; see
/// `crates/model/README.md`). They encode *mechanisms*, not fits to
/// individual scenarios:
mod tuning {
    /// A blocked stream re-fires the moment the algorithm releases its
    /// links, so during an exchange a touched link's effective duty
    /// cycle saturates well above its quiet-network value.
    pub const UTIL_SATURATION: f64 = 2.0;

    /// Residual occupancy seen by the gated arrival at a busy stream
    /// link, as a fraction of one occupancy (½ for a memoryless
    /// arrival; the engine's FIFO wake order and circuit re-acquisition
    /// push it higher).
    pub const RESIDUAL: f64 = 0.75;

    /// Weight of the backlog term: injections queued while the
    /// previous step held their links re-fire at release and drain
    /// *ahead of* the next circuit (earlier queue sequence wins), so a
    /// step also pays `u/(1-u)` of the previous step's own
    /// (m-dependent) duration — the drain itself admits new arrivals,
    /// hence the geometric `1/(1-u)`.
    pub const BACKLOG: f64 = 0.85;

    /// Cap on the utilization entering `u/(1-u)`, keeping the drain
    /// estimate finite when a stream's occupancy approaches its
    /// period.
    pub const UTIL_CAP: f64 = 0.9;

    /// Extra effective draws in the per-step factor maximum under
    /// spread profiles: the coupled schedule is gated by the slowest
    /// of many concurrent pairs (barrier at every phase boundary,
    /// pairwise chaining within), so the bandwidth bottleneck a phase
    /// *feels* sits above the single-pair expectation.
    pub const GATING_DRAWS: f64 = 2.0;

    /// Weight of the pair-desync penalty under spread profiles: the
    /// two directions of an exchange cross *different* directed links,
    /// so their sync messages take different times, the data starts
    /// drift apart, and the NIC concurrency window (Section 7.2)
    /// serializes part of what the clean network overlaps. The drift
    /// scales with the per-direction spread of the `δ·Σf` term.
    pub const DESYNC: f64 = 1.2;

    /// Spread weight on the store-and-forward τ term: a SAF hop
    /// retransmits the whole (effective) block, so the pair completes
    /// at the slower direction's per-byte factor, not the mean one —
    /// circuit switching handles this through the path-maximum order
    /// statistic, SAF needs it on each hop's own factor.
    pub const SAF_TAU_SPREAD: f64 = 0.2;
}

/// Per-dimension compression of a degraded network, the input of every
/// `conditioned_*` prediction. Build one with
/// [`ConditionSummary::noop`] / [`ConditionSummary::from_link_factors`]
/// / [`ConditionSummary::add_stream`], or extract one from a simulator
/// configuration with `mce_simnet::conformance::condition_summary`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionSummary {
    factors: Vec<DimFactor>,
    contention: Vec<DimContention>,
}

impl ConditionSummary {
    /// The no-op summary for a `d`-cube: unit factors, no contention.
    /// Conditioned predictions under it are bit-equal to the
    /// unconditioned model.
    pub fn noop(d: u32) -> ConditionSummary {
        ConditionSummary {
            factors: vec![DimFactor::unit(); d as usize],
            contention: vec![DimContention::default(); d as usize],
        }
    }

    /// Summarize a flat per-directed-link factor table indexed
    /// `from * d + dim` (the layout of
    /// `mce_simnet::NetCondition::resolve_speeds`) into per-dimension
    /// distributions.
    pub fn from_link_factors(d: u32, link_factors: &[f64]) -> ConditionSummary {
        let dims = d as usize;
        let n = 1usize << d;
        assert_eq!(link_factors.len(), n * dims, "factor table must be 2^d x d");
        let mut summary = ConditionSummary::noop(d);
        for (k, slot) in summary.factors.iter_mut().enumerate() {
            let (mut sum, mut lo, mut hi) = (0.0f64, f64::INFINITY, f64::NEG_INFINITY);
            for from in 0..n {
                let f = link_factors[from * dims + k];
                sum += f;
                lo = lo.min(f);
                hi = hi.max(f);
            }
            *slot = DimFactor { mean: sum / n as f64, min: lo, max: hi };
        }
        summary
    }

    /// Cube dimension this summary describes.
    pub fn dimension(&self) -> u32 {
        self.factors.len() as u32
    }

    /// Per-dimension factor distributions.
    pub fn factors(&self) -> &[DimFactor] {
        &self.factors
    }

    /// Per-dimension contention loads.
    pub fn contention(&self) -> &[DimContention] {
        &self.contention
    }

    /// Fold one background stream into the contention summary: the
    /// stream's circuit crosses the dimensions of `path_mask`
    /// (`src XOR dst`), occupying one directed link per dimension for
    /// `busy_us` out of every `period_us`.
    pub fn add_stream(&mut self, path_mask: u32, busy_us: f64, period_us: f64) {
        assert!(busy_us >= 0.0 && period_us > 0.0, "stream occupancy must be positive");
        let n = (1u64 << self.dimension()) as f64;
        let util = (busy_us / period_us).min(1.0);
        let mut mask = path_mask;
        while mask != 0 {
            let k = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let c = &mut self.contention[k];
            // Touch-weighted running means keep `util`/`busy_us`
            // representative of one touched link as streams accumulate.
            let new_touch = c.touch + 1.0 / n;
            c.util = (c.util * c.touch + util / n) / new_touch;
            c.busy_us = (c.busy_us * c.touch + busy_us / n) / new_touch;
            c.touch = new_touch.min(1.0);
        }
    }

    /// Whether this summary cannot change any prediction: unit factors
    /// everywhere and no contention. All `conditioned_*` functions
    /// short-circuit to the unconditioned model when this holds, which
    /// is what makes no-op conditions *bit-equal*, not merely close.
    pub fn is_noop(&self) -> bool {
        self.factors.iter().all(DimFactor::is_unit)
            && self.contention.iter().all(DimContention::is_idle)
    }

    /// Quantize this summary into its integer cache key: every
    /// per-dimension float (factor mean/min/max, contention
    /// touch/util/busy) rounded to [`FINGERPRINT_MANTISSA_BITS`]
    /// mantissa bits. Two summaries share a fingerprint iff every
    /// field agrees to within `2^-(FINGERPRINT_MANTISSA_BITS+1)`
    /// (≈ 0.2%) relative of a common bucket center — an order of
    /// magnitude below the tightest tolerance of the conformance
    /// accuracy envelope (`crates/model/README.md`), so bucket-mates
    /// are indistinguishable at the model's own resolution. This is
    /// the key the planner (`mce_plan`) caches optimality hulls under.
    pub fn fingerprint(&self) -> ConditionFingerprint {
        let mut words = Vec::with_capacity(6 * self.factors.len());
        for f in &self.factors {
            words.push(quantize_f64(f.mean));
            words.push(quantize_f64(f.min));
            words.push(quantize_f64(f.max));
        }
        for c in &self.contention {
            words.push(quantize_f64(c.touch));
            words.push(quantize_f64(c.util));
            words.push(quantize_f64(c.busy_us));
        }
        ConditionFingerprint::new(self.dimension(), words)
    }

    /// Expected `Σ f_i` over the links of one circuit crossing the
    /// dimensions of `mask` (the engine's per-hop switching-delay
    /// stretch; per-dimension means are exact in expectation).
    pub fn sum_factor(&self, mask: u32) -> f64 {
        let mut sum = 0.0;
        let mut m = mask;
        while m != 0 {
            sum += self.factors[m.trailing_zeros() as usize].mean;
            m &= m - 1;
        }
        sum
    }

    /// Expected `max f_i` over the links of a *pairwise exchange*
    /// crossing the dimensions of `mask`: both directions of the pair
    /// run concurrently and the pair completes at the slower one, so
    /// the bandwidth bottleneck is the worst of `2·|mask|` link draws
    /// — plus [`tuning::GATING_DRAWS`] phantom draws, because the
    /// coupled schedule is gated by the slowest of many concurrent
    /// pairs, not an average one. Deterministic profiles (zero spread)
    /// reduce to the exact maximum of the per-dimension factors;
    /// spread profiles add the uniform order-statistic correction
    /// `spread · j/(j+1)` above the pooled minimum.
    pub fn max_factor(&self, mask: u32) -> f64 {
        let hops = mask.count_ones();
        if hops == 0 {
            return 1.0;
        }
        let (mut max_mean, mut pool_min, mut pool_max) = (0.0f64, 0.0f64, 0.0f64);
        let mut m = mask;
        while m != 0 {
            let f = &self.factors[m.trailing_zeros() as usize];
            m &= m - 1;
            max_mean = max_mean.max(f.mean);
            pool_min += f.min;
            pool_max += f.max;
        }
        pool_min /= hops as f64;
        pool_max /= hops as f64;
        let draws = (2 * hops) as f64 + tuning::GATING_DRAWS;
        let order_stat = pool_min + (pool_max - pool_min) * draws / (draws + 1.0);
        order_stat.max(max_mean)
    }

    /// Scale of the factor spread along one circuit crossing the
    /// dimensions of `mask`: the pooled per-dimension `max - min`,
    /// `√hops`-scaled (per-direction sums of independent draws drift
    /// apart like a random walk). Zero for deterministic profiles.
    pub fn spread_scale(&self, mask: u32) -> f64 {
        let hops = mask.count_ones();
        if hops == 0 {
            return 0.0;
        }
        let mut spread = 0.0f64;
        let mut m = mask;
        while m != 0 {
            let f = &self.factors[m.trailing_zeros() as usize];
            m &= m - 1;
            spread += f.max - f.min;
        }
        spread / hops as f64 * (hops as f64).sqrt()
    }

    /// Expected contention delay one schedule step adds, µs. `mask`
    /// names the dimensions the step's circuits cross, `concurrency`
    /// the number of simultaneous transmissions (all `2^d` nodes send
    /// in every step of a complete exchange), and `step_us` the step's
    /// own conditioned transfer duration (the backlog a long step
    /// accumulates behind its held links drains before the next step).
    ///
    /// Mechanism (constants in [`tuning`], calibrated against the
    /// engine — see `crates/simnet/tests/contention_calibration.rs`):
    /// a pair's circuit is *hit* when some link of its path is a
    /// stream-routed link in its busy phase; the coupled schedule
    /// (pairwise chaining within a phase, barriers between phases) is
    /// gated by the worst of the `concurrency` concurrent paths, so
    /// the step pays, with probability `1 - (1-q_pair)^concurrency`,
    ///
    /// * the *residual* of the occupancy it ran into, plus
    /// * the *backlog drain*: every injection blocked during the
    ///   previous step fires ahead of the algorithm's next circuit
    ///   (FIFO by request time), costing `u/(1-u)` of the step's own
    ///   duration.
    ///
    /// This is the dilute-traffic estimate. Dense anti-phased ladders
    /// can starve multi-hop circuits outright (no simultaneous free
    /// window across their links until the streams exhaust) — a regime
    /// the summary deliberately does not model; see the accuracy
    /// envelope in `crates/model/README.md`.
    pub fn step_delay_us(&self, mask: u32, concurrency: u32, step_us: f64) -> f64 {
        let mut miss_pair = 1.0f64; // P(one path sees no busy stream link)
        let mut weight = 0.0f64;
        let mut busy_weighted = 0.0f64;
        let mut util_weighted = 0.0f64;
        let mut m = mask;
        while m != 0 {
            let c = &self.contention[m.trailing_zeros() as usize];
            m &= m - 1;
            if c.is_idle() {
                continue;
            }
            let duty = (c.util * tuning::UTIL_SATURATION).min(1.0);
            let hit = c.touch * duty;
            miss_pair *= 1.0 - hit;
            weight += hit;
            busy_weighted += hit * c.busy_us;
            util_weighted += hit * c.util;
        }
        if weight == 0.0 {
            return 0.0;
        }
        let busy = busy_weighted / weight;
        let util = (util_weighted / weight).min(tuning::UTIL_CAP);
        // P(at least one of `concurrency` independent paths is hit).
        let any_hit = 1.0 - miss_pair.powi(concurrency as i32);
        any_hit * (tuning::RESIDUAL * busy + tuning::BACKLOG * util / (1.0 - util) * step_us)
    }
}

/// Mantissa bits a [`ConditionFingerprint`] keeps per float. Eight
/// bits buckets values to within `2^-9 ≈ 0.2%` relative (round to
/// nearest), an order of magnitude below the tightest tolerance in the
/// conformance accuracy envelope (2% for no-op conditions,
/// `crates/model/README.md`): summaries the model itself cannot tell
/// apart land in the same bucket, while anything that moves a
/// prediction by more than the envelope's resolution gets its own key.
pub const FINGERPRINT_MANTISSA_BITS: u32 = 8;

/// Round `x` to [`FINGERPRINT_MANTISSA_BITS`] mantissa bits and return
/// the resulting IEEE-754 bit pattern. Round-to-nearest in bit space:
/// adding half the dropped range before masking carries into the
/// exponent exactly when the mantissa overflows, which is the correct
/// rounding there too. `±0` collapse to one bucket; non-finite values
/// pass through their raw bits (NaN payloads are preserved, but no
/// summary field produces NaN from finite inputs).
fn quantize_f64(x: f64) -> u64 {
    if !x.is_finite() {
        return x.to_bits();
    }
    if x == 0.0 {
        return 0;
    }
    let drop = 52 - FINGERPRINT_MANTISSA_BITS;
    let half = 1u64 << (drop - 1);
    (x.to_bits().wrapping_add(half)) & !((1u64 << drop) - 1)
}

/// Stable integer cache key for a [`ConditionSummary`]: every
/// per-dimension float quantized to [`FINGERPRINT_MANTISSA_BITS`]
/// mantissa bits (see [`ConditionSummary::fingerprint`] for the error
/// bound). Hashable and orderable, so it can key a hull cache
/// directly; serializable so precomputed hulls can be persisted
/// alongside the key that owns them.
/// `Hash` is implemented over a precomputed 64-bit digest of the words
/// rather than the word vector itself: fingerprints are built once per
/// query but hashed on every cache probe, and digest hashing keeps a
/// warm planner lookup allocation- and sweep-free. The digest is a
/// pure function of `(dimension, words)`, so equal fingerprints hash
/// equally, as `Hash`/`Eq` consistency requires.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConditionFingerprint {
    dimension: u32,
    words: Vec<u64>,
    digest: u64,
}

impl std::hash::Hash for ConditionFingerprint {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest);
    }
}

impl ConditionFingerprint {
    fn new(dimension: u32, words: Vec<u64>) -> ConditionFingerprint {
        // Word-at-a-time multiply-xor mix (FNV-1a style, 64-bit
        // stride); any mixing function would do, it only has to be
        // deterministic and well spread, and one multiply per word
        // keeps fingerprinting off the warm path's profile.
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |w: u64| {
            digest = (digest ^ w).wrapping_mul(0x0000_0100_0000_01b3);
            digest ^= digest >> 29;
        };
        mix(dimension as u64);
        for &w in &words {
            mix(w);
        }
        ConditionFingerprint { dimension, words, digest }
    }

    /// Cube dimension the summarized condition applies to.
    pub fn dimension(&self) -> u32 {
        self.dimension
    }

    /// The quantized field values: per-dimension factor
    /// `[mean, min, max]` triples followed by per-dimension contention
    /// `[touch, util, busy_us]` triples (`6 * dimension` words).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The precomputed digest `Hash` writes (a pure function of
    /// dimension and words).
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

/// Price one circuit-switched schedule step: a pairwise exchange of
/// `bytes` over the dimensions of `mask`, with pairwise-sync overhead
/// when the machine uses it, plus the expected contention delay.
fn conditioned_step_us(
    p: &MachineParams,
    bytes: f64,
    mask: u32,
    cond: &ConditionSummary,
    concurrency: u32,
) -> f64 {
    let transfer = p.lambda_eff()
        + p.tau * bytes * cond.max_factor(mask)
        + p.delta_eff() * cond.sum_factor(mask)
        + tuning::DESYNC * p.delta_eff() * cond.spread_scale(mask);
    // The sync and data acquisitions are back to back on the same
    // links, so a step waits on the background at most once.
    transfer + cond.step_delay_us(mask, concurrency, transfer)
}

/// Conditioned analogue of [`crate::partial_exchange_time`] (Eq. 3):
/// one multiphase partial exchange on the subcube spanned by
/// dimensions `lo .. lo + di` of a `d`-cube, with original block size
/// `m` bytes. Steps are priced individually (their factor maxima and
/// sums differ per XOR mask), so this is `O(2^di)` instead of the
/// closed form — still trivially cheap at the paper's dimensions.
pub fn conditioned_partial_exchange_time(
    p: &MachineParams,
    m: f64,
    lo: u32,
    di: u32,
    d: u32,
    cond: &ConditionSummary,
) -> f64 {
    assert!(di >= 1 && lo + di <= d, "field [{lo}, {}) invalid for cube {d}", lo + di);
    assert_eq!(cond.dimension(), d, "summary dimension mismatch");
    if cond.is_noop() {
        return crate::partial_exchange_time(p, m, di, d);
    }
    let meff = crate::effective_block_size(m, di, d);
    let concurrency = 1u32 << d;
    let mut t = 0.0;
    for j in 1u32..(1 << di) {
        t += conditioned_step_us(p, meff, j << lo, cond, concurrency);
    }
    if di < d {
        t += p.shuffle_time(m * (1u64 << d) as f64);
    }
    t + p.barrier_time(d)
}

/// Conditioned analogue of [`crate::multiphase_time`]: the full
/// multiphase complete exchange with partition `dims` on a degraded
/// `d`-cube.
///
/// Unlike the homogeneous model, the cost now depends on *which* cube
/// dimensions each phase routes. `dims` is taken in the given order
/// with the same layout the program builder uses (`mce-core`): phase 1
/// routes the **top** `dims[0]` bits, phase 2 the next field down, and
/// so on.
pub fn conditioned_multiphase_time(
    p: &MachineParams,
    m: f64,
    d: u32,
    dims: &[u32],
    cond: &ConditionSummary,
) -> f64 {
    let total: u32 = dims.iter().sum();
    assert_eq!(total, d, "partition {dims:?} does not sum to dimension {d}");
    assert_eq!(cond.dimension(), d, "summary dimension mismatch");
    if cond.is_noop() {
        return multiphase_time(p, m, d, dims);
    }
    let mut hi = d;
    let mut t = 0.0;
    for &di in dims {
        hi -= di;
        t += conditioned_partial_exchange_time(p, m, hi, di, d, cond);
    }
    t
}

/// Conditioned analogue of raw Eq. (1): Standard Exchange, one
/// distance-1 transmission of `m 2^(d-1)` bytes per dimension plus two
/// shuffles' worth of permutation per phase, now with each dimension's
/// own slowdown factor and contention load.
pub fn conditioned_standard_exchange_time(
    p: &MachineParams,
    m: f64,
    d: u32,
    cond: &ConditionSummary,
) -> f64 {
    assert!(d >= 1, "standard exchange needs d >= 1");
    assert_eq!(cond.dimension(), d, "summary dimension mismatch");
    if cond.is_noop() {
        return standard_exchange_time(p, m, d);
    }
    let half_n = (1u64 << (d - 1)) as f64;
    let concurrency = 1u32 << d;
    let mut t = 0.0;
    for k in 0..d {
        let mask = 1u32 << k;
        let transfer = p.lambda
            + (p.tau * cond.max_factor(mask) + 2.0 * p.rho) * m * half_n
            + p.delta * cond.sum_factor(mask);
        t += transfer + cond.step_delay_us(mask, concurrency, transfer);
    }
    t
}

/// Conditioned analogue of raw Eq. (2): the Optimal Circuit Switched
/// algorithm's `2^d - 1` single-block transmissions, each priced with
/// the factor maximum/sum and contention load of its own XOR mask.
pub fn conditioned_optimal_cs_time(
    p: &MachineParams,
    m: f64,
    d: u32,
    cond: &ConditionSummary,
) -> f64 {
    assert!(d >= 1, "optimal circuit switched exchange needs d >= 1");
    assert_eq!(cond.dimension(), d, "summary dimension mismatch");
    if cond.is_noop() {
        return optimal_cs_time(p, m, d);
    }
    let concurrency = 1u32 << d;
    let mut t = 0.0;
    for j in 1u32..(1 << d) {
        let transfer = p.lambda + p.tau * m * cond.max_factor(j) + p.delta * cond.sum_factor(j);
        t += transfer + cond.step_delay_us(j, concurrency, transfer);
    }
    t
}

/// Whether Standard Exchange is predicted to beat Optimal Circuit
/// Switched for block size `m` on the conditioned cube (raw model).
pub fn conditioned_standard_wins(
    p: &MachineParams,
    m: f64,
    d: u32,
    cond: &ConditionSummary,
) -> bool {
    conditioned_standard_exchange_time(p, m, d, cond) < conditioned_optimal_cs_time(p, m, d, cond)
}

/// The conditioned Standard-vs-Optimal crossover block size: the `m`
/// where the two raw conditioned predictions intersect. Every
/// conditioned prediction is affine in `m`, so the crossover is an
/// exact line intersection, evaluated from two samples per algorithm —
/// no scanning.
///
/// The returned value is the smallest block size from which Optimal
/// Circuit Switched *strictly* beats Standard Exchange (and keeps
/// beating it), with **ties preferring the paper's Standard Exchange**:
///
/// * `f64::INFINITY` — Standard Exchange is never strictly beaten at
///   any size. This covers both diverging lines (Standard's per-byte
///   cost at or below Optimal's with a lower-or-equal intercept, e.g.
///   under contention that saturates the long-circuit plan) and the
///   degenerate exact tie where the two predictions coincide
///   everywhere; an exact tie is a Standard Exchange win, not an
///   "Optimal from 0 B" report.
/// * `0.0` — Optimal Circuit Switched already wins from the first
///   byte (its line is strictly below Standard's at `m = 0`, or the
///   intersection falls at negative `m`).
/// * anything between — the exact intersection of the two lines.
pub fn conditioned_crossover_block_size(p: &MachineParams, d: u32, cond: &ConditionSummary) -> f64 {
    assert!(d >= 2, "crossover undefined for d < 2 (algorithms coincide at d = 1)");
    assert_eq!(cond.dimension(), d, "summary dimension mismatch");
    if cond.is_noop() {
        return crossover_block_size(p, d);
    }
    let se0 = conditioned_standard_exchange_time(p, 0.0, d, cond);
    let se_slope = conditioned_standard_exchange_time(p, 1.0, d, cond) - se0;
    let ocs0 = conditioned_optimal_cs_time(p, 0.0, d, cond);
    let ocs_slope = conditioned_optimal_cs_time(p, 1.0, d, cond) - ocs0;
    if se_slope <= ocs_slope {
        // Standard's per-byte cost no longer exceeds Optimal's: the
        // lines diverge or run parallel, so whoever is at or below the
        // other at m = 0 stays there. `<=` (not `<`): an exact
        // intercept tie means Optimal never wins *strictly*, and ties
        // prefer Standard Exchange.
        return if se0 <= ocs0 { f64::INFINITY } else { 0.0 };
    }
    ((ocs0 - se0) / (se_slope - ocs_slope)).max(0.0)
}

/// Conditioned analogue of [`crate::best_partition`]: exhaustive
/// enumeration under [`conditioned_multiphase_time`]. Partitions are
/// priced in canonical (non-increasing) part order, matching the
/// layout `mce-core` builds programs with.
pub fn conditioned_best_partition(
    p: &MachineParams,
    m: f64,
    d: u32,
    cond: &ConditionSummary,
) -> (Partition, f64) {
    best_partition_by(d, |part| conditioned_multiphase_time(p, m, d, part.parts(), cond))
}

/// Conditioned analogue of [`crate::optimality_hull`]: the best
/// partition at each block size in `[0, m_max]` at `step` resolution,
/// merged into faces. Conditioned predictions stay affine in `m`, so
/// each partition still occupies one contiguous interval.
pub fn conditioned_optimality_hull(
    p: &MachineParams,
    d: u32,
    m_max: f64,
    step: f64,
    cond: &ConditionSummary,
) -> Vec<HullFace> {
    optimality_hull_by(d, m_max, step, |m, part| {
        conditioned_multiphase_time(p, m, d, part.parts(), cond)
    })
}

/// One conditioned store-and-forward schedule step: the step's message
/// is received and retransmitted at every hop, so each dimension of
/// `mask` is a full `λ + τ·m·f + δ·f` transfer at that dimension's
/// mean factor (no path maximum — hops don't share a circuit), with
/// sync messages likewise forwarded per hop.
fn conditioned_saf_step_us(
    p: &MachineParams,
    bytes: f64,
    mask: u32,
    cond: &ConditionSummary,
    concurrency: u32,
) -> f64 {
    let mut transfer = 0.0;
    let mut m = mask;
    while m != 0 {
        let f = &cond.factors[m.trailing_zeros() as usize];
        m &= m - 1;
        let f_tau = f.mean + tuning::SAF_TAU_SPREAD * (f.max - f.min);
        transfer += p.lambda + p.tau * bytes * f_tau + p.delta * f.mean;
        if p.pairwise_sync {
            transfer += p.lambda_zero + p.delta * f.mean;
        }
    }
    // Heterogeneous per-direction hop times desynchronize the pair and
    // the NIC window serializes part of the overlap, as in the
    // circuit-switched step.
    transfer += tuning::DESYNC * p.delta_eff() * cond.spread_scale(mask);
    transfer + cond.step_delay_us(mask, concurrency, transfer)
}

/// Conditioned analogue of `partial_exchange_saf_time`: one partial
/// exchange on dimensions `lo .. lo + di` under store and forward.
pub fn conditioned_partial_exchange_saf_time(
    p: &MachineParams,
    m: f64,
    lo: u32,
    di: u32,
    d: u32,
    cond: &ConditionSummary,
) -> f64 {
    assert!(di >= 1 && lo + di <= d, "field [{lo}, {}) invalid for cube {d}", lo + di);
    assert_eq!(cond.dimension(), d, "summary dimension mismatch");
    if cond.is_noop() {
        return crate::saf::partial_exchange_saf_time(p, m, di, d);
    }
    let meff = crate::effective_block_size(m, di, d);
    let concurrency = 1u32 << d;
    let mut t = 0.0;
    for j in 1u32..(1 << di) {
        t += conditioned_saf_step_us(p, meff, j << lo, cond, concurrency);
    }
    if di < d {
        t += p.shuffle_time(m * (1u64 << d) as f64);
    }
    t + p.barrier_time(d)
}

/// Conditioned analogue of [`crate::multiphase_saf_time`]: the full
/// multiphase complete exchange under store and forward on a degraded
/// cube, phases laid out top-down like
/// [`conditioned_multiphase_time`].
pub fn conditioned_multiphase_saf_time(
    p: &MachineParams,
    m: f64,
    d: u32,
    dims: &[u32],
    cond: &ConditionSummary,
) -> f64 {
    let total: u32 = dims.iter().sum();
    assert_eq!(total, d, "partition {dims:?} does not sum to {d}");
    assert_eq!(cond.dimension(), d, "summary dimension mismatch");
    if cond.is_noop() {
        return multiphase_saf_time(p, m, d, dims);
    }
    let mut hi = d;
    let mut t = 0.0;
    for &di in dims {
        hi -= di;
        t += conditioned_partial_exchange_saf_time(p, m, hi, di, d, cond);
    }
    t
}

/// Conditioned analogue of [`crate::best_saf_partition`].
pub fn conditioned_best_saf_partition(
    p: &MachineParams,
    m: f64,
    d: u32,
    cond: &ConditionSummary,
) -> (Partition, f64) {
    best_partition_by(d, |part| conditioned_multiphase_saf_time(p, m, d, part.parts(), cond))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(d: u32, f: f64) -> ConditionSummary {
        let n = 1usize << d;
        ConditionSummary::from_link_factors(d, &vec![f; n * d as usize])
    }

    #[test]
    fn noop_summary_is_detected_and_bit_equal() {
        let p = MachineParams::ipsc860();
        for d in 2..=6u32 {
            let cond = ConditionSummary::noop(d);
            assert!(cond.is_noop());
            for m in [0.0, 24.0, 160.0] {
                assert_eq!(
                    conditioned_multiphase_time(&p, m, d, &[d], &cond).to_bits(),
                    multiphase_time(&p, m, d, &[d]).to_bits()
                );
                assert_eq!(
                    conditioned_standard_exchange_time(&p, m, d, &cond).to_bits(),
                    standard_exchange_time(&p, m, d).to_bits()
                );
            }
            assert_eq!(
                conditioned_crossover_block_size(&p, d, &cond).to_bits(),
                crossover_block_size(&p, d).to_bits()
            );
        }
    }

    #[test]
    fn uniform_slowdown_scales_tau_and_delta_terms() {
        // With factor f on every link, the conditioned per-step price
        // is λ_eff + f·τ·meff + f·δ_eff·dist — check against a hand
        // computation for a single-phase plan.
        let p = MachineParams::hypothetical();
        let d = 3u32;
        let cond = uniform(d, 2.0);
        assert!(!cond.is_noop());
        let m = 10.0;
        let mut expect = 0.0;
        for j in 1u32..8 {
            let hops = j.count_ones() as f64;
            expect += p.lambda + p.tau * m * 2.0 + p.delta * 2.0 * hops;
        }
        let got = conditioned_multiphase_time(&p, m, d, &[d], &cond);
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn per_dimension_factors_price_fields_differently() {
        // Slow only the top dimension: a partition whose first phase
        // routes the top bits must cost more than the mirror ordering
        // prices its bottom field... and more than the clean cube.
        let p = MachineParams::ipsc860();
        let d = 4u32;
        let n = 1usize << d;
        let mut link_factors = vec![1.0; n * d as usize];
        for from in 0..n {
            link_factors[from * d as usize + 3] = 5.0; // dim 3 slow
        }
        let cond = ConditionSummary::from_link_factors(d, &link_factors);
        let clean = multiphase_time(&p, 40.0, d, &[2, 2]);
        let degraded = conditioned_multiphase_time(&p, 40.0, d, &[2, 2], &cond);
        assert!(degraded > clean, "{degraded} vs {clean}");
        // Only the phase routing dims {3,2} pays; the {1,0} phase is
        // priced clean. Check the split via the partial times.
        let top = conditioned_partial_exchange_time(&p, 40.0, 2, 2, d, &cond);
        let bottom = conditioned_partial_exchange_time(&p, 40.0, 0, 2, d, &cond);
        assert!(top > bottom);
        assert!((bottom - crate::partial_exchange_time(&p, 40.0, 2, d)).abs() < 1e-9);
    }

    #[test]
    fn from_link_factors_summarizes_distribution() {
        let d = 2u32;
        // dim 0 factors: 1, 2, 3, 4 -> mean 2.5; dim 1 all 1.0.
        let link_factors = vec![1.0, 1.0, 2.0, 1.0, 3.0, 1.0, 4.0, 1.0];
        let cond = ConditionSummary::from_link_factors(d, &link_factors);
        let f0 = cond.factors()[0];
        assert_eq!((f0.mean, f0.min, f0.max), (2.5, 1.0, 4.0));
        assert!(cond.factors()[1].is_unit());
        // max_factor over dim 0 alone: order statistic over 2 + 2
        // gating draws of [1,4] = 1 + 3·(4/5) = 3.4, floored by the
        // mean 2.5 -> 3.4.
        assert!((cond.max_factor(0b01) - 3.4).abs() < 1e-12);
        // sum over both dims: 2.5 + 1.0.
        assert!((cond.sum_factor(0b11) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn contention_punishes_long_circuits_hardest() {
        // A hotspot on every dimension: the singleton plan (many
        // multi-dimension circuits) must gain more than Standard
        // Exchange (d single-dimension steps), pushing the crossover
        // out — the robustness study's measured effect.
        let p = MachineParams::ipsc860();
        let d = 6u32;
        let mut cond = ConditionSummary::noop(d);
        for s in 0..4u32 {
            cond.add_stream(0x3F ^ (s & 1), 314.0, 600.0);
        }
        assert!(!cond.is_noop());
        let clean_cross = crossover_block_size(&p, d);
        let hot_cross = conditioned_crossover_block_size(&p, d, &cond);
        assert!(
            hot_cross > clean_cross * 1.2,
            "contention must move the crossover out: {clean_cross} -> {hot_cross}"
        );
        // And the conditioned OCS time exceeds its clean price by more
        // (relatively) than SE's.
        let m = 100.0;
        let ocs_ratio = conditioned_optimal_cs_time(&p, m, d, &cond) / optimal_cs_time(&p, m, d);
        let se_ratio =
            conditioned_standard_exchange_time(&p, m, d, &cond) / standard_exchange_time(&p, m, d);
        assert!(ocs_ratio > se_ratio, "{ocs_ratio} vs {se_ratio}");
    }

    #[test]
    fn predictions_are_affine_in_block_size() {
        let p = MachineParams::ipsc860();
        let d = 5u32;
        let mut cond = uniform(d, 1.7);
        cond.add_stream(0b11111, 250.0, 500.0);
        for dims in [vec![d], vec![2, 3], vec![1; d as usize]] {
            let t0 = conditioned_multiphase_time(&p, 0.0, d, &dims, &cond);
            let t1 = conditioned_multiphase_time(&p, 64.0, d, &dims, &cond);
            let t2 = conditioned_multiphase_time(&p, 128.0, d, &dims, &cond);
            assert!(((t2 - t1) - (t1 - t0)).abs() < 1e-6, "{dims:?} not affine");
        }
    }

    #[test]
    fn conditioned_hull_faces_tile_and_prefer_fine_partitions_under_contention() {
        let p = MachineParams::ipsc860();
        let d = 6u32;
        let mut cond = ConditionSummary::noop(d);
        for _ in 0..6 {
            cond.add_stream(0x3F, 314.0, 600.0);
        }
        let hull = conditioned_optimality_hull(&p, d, 400.0, 4.0, &cond);
        assert_eq!(hull[0].from, 0.0);
        for w in hull.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        assert_eq!(hull.last().unwrap().to, f64::INFINITY);
        // The clean hull hands {6} the tail beyond ~140 B; under a
        // heavy hotspot the singleton's takeover must move out (or
        // vanish from the swept range entirely).
        let clean = crate::optimality_hull(&p, d, 400.0, 4.0);
        let takeover = |faces: &[HullFace]| {
            faces
                .iter()
                .find(|f| f.partition.parts() == [d])
                .map(|f| f.from)
                .unwrap_or(f64::INFINITY)
        };
        assert!(takeover(&hull) > takeover(&clean) * 1.2);
    }

    #[test]
    fn saf_noop_matches_unconditioned_and_slowdown_scales() {
        let p = MachineParams::ipsc860();
        let d = 4u32;
        let noop = ConditionSummary::noop(d);
        for dims in [vec![d], vec![2, 2], vec![1; d as usize]] {
            assert_eq!(
                conditioned_multiphase_saf_time(&p, 30.0, d, &dims, &noop).to_bits(),
                multiphase_saf_time(&p, 30.0, d, &dims).to_bits()
            );
        }
        let slowed = uniform(d, 3.0);
        for dims in [vec![d], vec![2, 2]] {
            assert!(
                conditioned_multiphase_saf_time(&p, 30.0, d, &dims, &slowed)
                    > multiphase_saf_time(&p, 30.0, d, &dims)
            );
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_wrong_dimension_summary() {
        let p = MachineParams::ipsc860();
        let cond = ConditionSummary::noop(3);
        let _ = conditioned_multiphase_time(&p, 10.0, 4, &[4], &cond);
    }

    #[test]
    fn crossover_exact_tie_prefers_standard_exchange() {
        // Regression: an *exact* intercept tie used to fall through
        // `se0 < ocs0` and report Optimal winning from 0 B. With every
        // machine parameter zeroed, both algorithms price every step at
        // exactly 0 µs under any uniform factor — identical lines — so
        // the tie rule must report INFINITY (Standard never *strictly*
        // beaten), not 0.0. (With nonnegative real parameters an exact
        // intercept tie is near-unreachable — Optimal pays 2^d - 1
        // startups against Standard's d — which is why the degenerate
        // machine is the regression vehicle.)
        let p = MachineParams {
            name: "zero".into(),
            lambda: 0.0,
            lambda_zero: 0.0,
            tau: 0.0,
            delta: 0.0,
            rho: 0.0,
            barrier_per_dim: 0.0,
            pairwise_sync: false,
            unforced_threshold: 0,
        };
        let d = 2u32;
        let cond = uniform(d, 2.0); // non-noop: take the conditioned path
        assert!(!cond.is_noop());
        let se0 = conditioned_standard_exchange_time(&p, 0.0, d, &cond);
        let ocs0 = conditioned_optimal_cs_time(&p, 0.0, d, &cond);
        assert_eq!(se0.to_bits(), ocs0.to_bits(), "tie precondition");
        assert_eq!(conditioned_crossover_block_size(&p, d, &cond), f64::INFINITY);
    }

    #[test]
    fn crossover_reports_zero_when_optimal_wins_from_first_byte() {
        // The other end of the tie rule: contention that hits only the
        // *single-dimension* steps (touching one dim hits every one of
        // Standard's d phases but dilutes across Optimal's circuits)
        // cannot occur with uniform factors, so drive se0 above ocs0
        // directly by slowing every link uniformly — Standard pays the
        // factor d times per node, Optimal's single phase pays the
        // path max once. On ipsc860 the λ-dominated intercepts still
        // favor Standard, so check the documented contract instead: a
        // finite crossover is exactly where the lines intersect, and
        // strictly-below-at-zero reports 0.0 via a constructed summary.
        let p = MachineParams::ipsc860();
        let d = 3u32;
        let cond = uniform(d, 4.0);
        let cross = conditioned_crossover_block_size(&p, d, &cond);
        if cross.is_finite() && cross > 0.0 {
            let se = conditioned_standard_exchange_time(&p, cross, d, &cond);
            let ocs = conditioned_optimal_cs_time(&p, cross, d, &cond);
            assert!((se - ocs).abs() < 1e-6 * se.max(1.0), "{se} vs {ocs}");
        }
        // max(0.0) clamp: intersection at negative m (ocs0 < se0 with
        // Standard the shallower line is impossible on real machines;
        // synthesize it with a zero machine plus hand-built summaries
        // is overkill — the clamp is covered by the formula test above
        // and the INFINITY branch by the tie regression).
        assert!(cross >= 0.0 || cross == f64::INFINITY);
    }

    #[test]
    fn fingerprint_buckets_at_the_documented_resolution() {
        let d = 4u32;
        let mut a = ConditionSummary::noop(d);
        a.add_stream(0b1010, 314.0, 600.0);
        let fa = a.fingerprint();
        assert_eq!(fa.dimension(), d);
        assert_eq!(fa.words().len(), 6 * d as usize);

        // Bit-identical summary -> identical fingerprint.
        let mut b = ConditionSummary::noop(d);
        b.add_stream(0b1010, 314.0, 600.0);
        assert_eq!(fa, b.fingerprint());

        // A perturbation far below the bucket width (0.01% relative)
        // lands in the same bucket...
        let close = uniform(d, 1.5);
        let close2 = uniform(d, 1.5 * (1.0 + 1e-4));
        assert_eq!(close.fingerprint(), close2.fingerprint());
        // ...while a change beyond the envelope's resolution (1%
        // relative > 2^-9) does not.
        let far = uniform(d, 1.5 * 1.01);
        assert_ne!(close.fingerprint(), far.fingerprint());

        // Different dimensions never collide, even for no-op content.
        assert_ne!(
            ConditionSummary::noop(3).fingerprint(),
            ConditionSummary::noop(4).fingerprint()
        );
    }

    #[test]
    fn fingerprint_quantization_error_is_bounded() {
        // Round-trip every word through the quantizer: the bucket
        // center must sit within 2^-(bits+1) relative of the input.
        let bound = (2.0f64).powi(-(FINGERPRINT_MANTISSA_BITS as i32) - 1) * 1.0001;
        for x in [1.0, 1.5, 2.7391823, 314.159, 0.000123, 1e9, 599.999] {
            let q = f64::from_bits(quantize_f64(x));
            assert!(
                ((q - x) / x).abs() <= bound,
                "quantize({x}) = {q}: relative error above 2^-{}",
                FINGERPRINT_MANTISSA_BITS + 1
            );
        }
        // Sign and zero handling.
        assert_eq!(quantize_f64(0.0), quantize_f64(-0.0));
        assert_eq!(quantize_f64(f64::INFINITY), f64::INFINITY.to_bits());
    }
}
