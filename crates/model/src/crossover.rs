//! The Standard-vs-Optimal crossover block size (Section 4.3).

use crate::{optimal_cs_time, standard_exchange_time, MachineParams};

/// Block size below which the Standard Exchange algorithm beats the
/// Optimal Circuit Switched algorithm (raw Eqs. 1 and 2):
///
/// ```text
/// m < [ (2^d - d - 1) λ + d (2^(d-1) - 1) δ ]
///     / [ (d 2^(d-1) - 2^d + 1) τ + d 2^d ρ ]
/// ```
///
/// For the paper's hypothetical machine with `d = 6` this evaluates to
/// just under 30 bytes ("the Standard Exchange algorithm is better for
/// blocks of size less than 30").
pub fn crossover_block_size(p: &MachineParams, d: u32) -> f64 {
    assert!(d >= 2, "crossover undefined for d < 2 (algorithms coincide at d = 1)");
    let n = (1u64 << d) as f64;
    let half_n = n / 2.0;
    let df = d as f64;
    let numerator = (n - df - 1.0) * p.lambda + df * (half_n - 1.0) * p.delta;
    let denominator = (df * half_n - n + 1.0) * p.tau + df * n * p.rho;
    numerator / denominator
}

/// Whether Standard Exchange is predicted to beat Optimal Circuit
/// Switched for block size `m` (raw model).
pub fn standard_wins(p: &MachineParams, m: f64, d: u32) -> bool {
    standard_exchange_time(p, m, d) < optimal_cs_time(p, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypothetical_machine_crossover_is_just_under_30() {
        let p = MachineParams::hypothetical();
        let m = crossover_block_size(&p, 6);
        assert!(m > 29.0 && m < 30.0, "crossover {m}");
    }

    #[test]
    fn crossover_separates_the_two_algorithms() {
        for (p, d) in [
            (MachineParams::hypothetical(), 6u32),
            (MachineParams::ipsc860(), 5),
            (MachineParams::ipsc860(), 7),
            (MachineParams::ncube2_like(), 6),
        ] {
            let mx = crossover_block_size(&p, d);
            assert!(mx.is_finite() && mx >= 0.0);
            // Strictly below: standard wins; strictly above: optimal wins.
            if mx > 1.0 {
                assert!(standard_wins(&p, mx * 0.5, d), "below crossover, {} d={d}", p.name);
            }
            assert!(!standard_wins(&p, mx * 2.0 + 64.0, d), "above crossover, {} d={d}", p.name);
            // At the crossover the two predictions coincide.
            let ts = standard_exchange_time(&p, mx, d);
            let to = optimal_cs_time(&p, mx, d);
            assert!((ts - to).abs() / to < 1e-9, "equal at crossover");
        }
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn rejects_d1() {
        let _ = crossover_block_size(&MachineParams::ipsc860(), 1);
    }
}
