//! Analytic cost model for complete-exchange algorithms on
//! circuit-switched hypercubes.
//!
//! Implements the run-time expressions of Sections 4.3, 5.2 and 7.4 of
//! Bokhari (1991):
//!
//! * Eq. (1): Standard Exchange, `t_SE(m,d) = d(λ + (τ+2ρ) m 2^(d-1) + δ)`;
//! * Eq. (2): Optimal Circuit Switched,
//!   `t_OCS(m,d) = (2^d - 1)(λ + τ m + δ d 2^(d-1)/(2^d - 1))`;
//! * Eq. (3): a multiphase *partial exchange* on subcubes of dimension
//!   `d_i` inside a dimension-`d` cube, with effective block size
//!   `m 2^(d - d_i)`, per-phase shuffle `ρ m 2^d` and global barrier;
//! * the Standard-vs-Optimal crossover block size (Section 4.3);
//! * the *hull of optimality* over all partitions of `d` (Section 8).
//!
//! All times are in microseconds, matching the paper's parameter units.
//!
//! # Example: the paper's Section 5.1 worked example
//!
//! ```
//! use mce_model::{MachineParams, standard_exchange_time, multiphase_time};
//! use mce_partitions::Partition;
//!
//! let hypo = MachineParams::hypothetical();
//! // Standard Exchange, m = 24, d = 6: the paper computes 15144 µs.
//! assert_eq!(standard_exchange_time(&hypo, 24.0, 6).round() as u64, 15144);
//! // Two-phase {2,4}: 1832 (phase 1) + 5080 (phase 2) + 3072 (shuffles).
//! let t = multiphase_time(&hypo, 24.0, 6, Partition::new(vec![2, 4]).parts());
//! assert_eq!(t.round() as u64, 9984);
//! ```

pub mod conditioned;
pub mod crossover;
pub mod hull;
pub mod multiphase;
pub mod optimal;
pub mod params;
pub mod partial;
pub mod patterns;
pub mod saf;
pub mod standard;
pub mod sweep;

pub use conditioned::{
    conditioned_best_partition, conditioned_best_saf_partition, conditioned_crossover_block_size,
    conditioned_multiphase_saf_time, conditioned_multiphase_time, conditioned_optimal_cs_time,
    conditioned_optimality_hull, conditioned_partial_exchange_saf_time,
    conditioned_partial_exchange_time, conditioned_standard_exchange_time,
    conditioned_standard_wins, ConditionFingerprint, ConditionSummary, DimContention, DimFactor,
    FINGERPRINT_MANTISSA_BITS,
};
pub use crossover::{crossover_block_size, standard_wins};
pub use hull::{
    affine_face_index, best_partition, best_partition_by, face_at, face_index, optimality_hull,
    optimality_hull_affine_by, optimality_hull_by, AffineHullFace, HullFace,
};
pub use multiphase::multiphase_time;
pub use optimal::optimal_cs_time;
pub use params::MachineParams;
pub use partial::{effective_block_size, partial_exchange_time};
pub use patterns::{
    allgather_time, broadcast_time, scatter_allgather_broadcast_time, scatter_time,
};
pub use saf::{best_saf_partition, multiphase_saf_time, saf_message_time};
pub use standard::standard_exchange_time;
pub use sweep::{sweep, sweep_by, SweepPoint, SweepRow};

/// Average circuit length over the steps of an XOR exchange schedule on
/// a dimension-`d` cube: `d 2^(d-1) / (2^d - 1)`.
///
/// At step `i` of the schedule every pair is at distance
/// `popcount(i)`; summed over `i = 1..2^d-1` the distances total
/// `d 2^(d-1)`, giving this average (paper, Section 4.3).
pub fn average_schedule_distance(d: u32) -> f64 {
    assert!(d >= 1);
    let n = (1u64 << d) as f64;
    (d as f64) * (n / 2.0) / (n - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_distance_is_mean_popcount() {
        for d in 1..=10u32 {
            let n = 1u64 << d;
            let total: u64 = (1..n).map(|i| i.count_ones() as u64).sum();
            let brute = total as f64 / (n - 1) as f64;
            assert!((average_schedule_distance(d) - brute).abs() < 1e-12, "d={d}");
        }
    }
}
