//! Eq. (3): a single multiphase *partial exchange*.

use crate::{average_schedule_distance, MachineParams};

/// The effective block size of a partial exchange on subcubes of
/// dimension `di` inside a dimension-`d` cube: `m · 2^(d - di)` bytes.
///
/// A partial exchange moves all `2^d` blocks regardless of subcube
/// dimension, grouped into superblocks of `2^(d-di)` blocks each
/// (paper, Section 5.2 and Figure 3).
#[inline]
pub fn effective_block_size(m: f64, di: u32, d: u32) -> f64 {
    assert!(di >= 1 && di <= d);
    m * (1u64 << (d - di)) as f64
}

/// Predicted time of one partial exchange on subcubes of dimension `di`
/// within a dimension-`d` cube with original block size `m` bytes,
/// generalizing the paper's Eq. (3):
///
/// ```text
/// t_pe(m, di, d) = (2^di - 1) ( λ_eff + τ m 2^(d-di)
///                               + δ_eff · di 2^(di-1)/(2^di - 1) )
///                 + [di < d] · ρ m 2^d
///                 + barrier(d)
/// ```
///
/// With the measured iPSC-860 constants (`λ_eff = 177.5`,
/// `δ_eff = 20.6`, `ρ = 0.54`, barrier `150 d`) this is exactly the
/// expression printed in Section 7.4. The shuffle term is omitted when
/// `di = d` because "d-shuffles of 2^d blocks are equivalent to the
/// identity permutation".
pub fn partial_exchange_time(p: &MachineParams, m: f64, di: u32, d: u32) -> f64 {
    assert!(di >= 1 && di <= d, "subcube dimension {di} invalid for cube {d}");
    let steps = ((1u64 << di) - 1) as f64;
    let transfer = steps
        * (p.lambda_eff()
            + p.tau * effective_block_size(m, di, d)
            + p.delta_eff() * average_schedule_distance(di));
    let shuffle = if di < d { p.shuffle_time(m * (1u64 << d) as f64) } else { 0.0 };
    transfer + shuffle + p.barrier_time(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluate the literal Section 7.4 expression for the iPSC-860 and
    /// check our generalized formula agrees.
    #[test]
    fn matches_literal_section_7_4_expression() {
        let p = MachineParams::ipsc860();
        for d in 1..=8u32 {
            for di in 1..=d {
                for m in [0.0f64, 8.0, 40.0, 160.0, 400.0] {
                    let meff = m * (1u64 << (d - di)) as f64;
                    let steps = ((1u64 << di) - 1) as f64;
                    let dist = (di as f64) * (1u64 << (di - 1)) as f64 / steps;
                    let mut literal =
                        steps * (177.5 + 0.394 * meff + 20.6 * dist) + 150.0 * d as f64;
                    if di < d {
                        literal += 0.54 * m * (1u64 << d) as f64;
                    }
                    let ours = partial_exchange_time(&p, m, di, d);
                    assert!(
                        (ours - literal).abs() < 1e-9,
                        "d={d} di={di} m={m}: {ours} vs {literal}"
                    );
                }
            }
        }
    }

    #[test]
    fn effective_block_sizes_from_paper() {
        // Section 5.1: d=6, m=24; phase on d1=2 uses 384-byte blocks.
        assert_eq!(effective_block_size(24.0, 2, 6), 384.0);
        assert_eq!(effective_block_size(24.0, 4, 6), 96.0);
        // Figure 3 (d=3, {2,1}): superblocks of 2 then 4 blocks.
        assert_eq!(effective_block_size(1.0, 2, 3), 2.0);
        assert_eq!(effective_block_size(1.0, 1, 3), 4.0);
    }

    #[test]
    fn full_cube_phase_skips_shuffle() {
        let p = MachineParams::ipsc860();
        let with_shuffle_would_be = {
            let steps = ((1u64 << 5) - 1) as f64;
            steps * (177.5 + 0.394 * 100.0 + 20.6 * average_schedule_distance(5))
                + 0.54 * 100.0 * 32.0
                + 150.0 * 5.0
        };
        let actual = partial_exchange_time(&p, 100.0, 5, 5);
        assert!(actual < with_shuffle_would_be);
        assert!((with_shuffle_would_be - actual - 0.54 * 100.0 * 32.0).abs() < 1e-9);
    }

    #[test]
    fn hypothetical_phase_costs_match_section_5_1() {
        let p = MachineParams::hypothetical();
        // Phase {2} of the {2,4} plan: 1832 transfer + 1536 shuffle.
        let t1 = partial_exchange_time(&p, 24.0, 2, 6);
        assert_eq!(t1.round() as u64, 1832 + 1536);
        // Phase {4}: 5080 (corrected from the paper's 6040 erratum)
        // + 1536 shuffle.
        let t2 = partial_exchange_time(&p, 24.0, 4, 6);
        assert_eq!(t2.round() as u64, 5080 + 1536);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn rejects_oversized_subcube() {
        let p = MachineParams::ipsc860();
        let _ = partial_exchange_time(&p, 10.0, 7, 6);
    }
}
