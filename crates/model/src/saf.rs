//! Store-and-forward cost model.
//!
//! The paper's predecessor machines (iPSC/1) forwarded whole messages
//! at every hop: an `h`-hop message costs `h(λ + τm + δ)` instead of
//! the circuit's `λ + τm + δh`. Seidel (1989), the paper's reference
//! \[15\], contrasts the two disciplines for symmetric communication
//! problems; this module prices the complete-exchange algorithms under
//! store and forward.
//!
//! The instructive result (asserted in the tests, reported by
//! `repro switching`): under store and forward **every** multiphase
//! partition moves the same `τ·m·d·2^(d-1)` *byte-hops* — the larger
//! effective blocks of a coarse phase are exactly cancelled by its
//! longer routes — so the paper's volume-vs-startup trade disappears.
//! What remains is a weaker trade between per-hop startups
//! (`λ·Σ d_i 2^(d_i-1)`, minimized by fine partitions) and
//! barrier/shuffle overhead (minimized by coarse ones); the big
//! circuit-switching win of `{d}`-style plans, whose whole point is
//! that distance is nearly free on a held circuit, is gone.

use crate::MachineParams;

/// Store-and-forward time of one `m`-byte message over `h` hops.
pub fn saf_message_time(p: &MachineParams, m: f64, h: u32) -> f64 {
    h as f64 * (p.lambda + p.tau * m + p.delta)
}

/// One multiphase partial exchange under store and forward: step `j`
/// crosses `popcount(j)` dimensions, each a full message transfer.
/// Sync messages are likewise store-and-forwarded when the machine
/// uses them.
pub fn partial_exchange_saf_time(p: &MachineParams, m: f64, di: u32, d: u32) -> f64 {
    assert!(di >= 1 && di <= d);
    let meff = m * (1u64 << (d - di)) as f64;
    // Σ_{j=1}^{2^di - 1} popcount(j) = di · 2^(di-1).
    let hop_sum = (di as f64) * (1u64 << (di - 1)) as f64;
    let mut t = hop_sum * (p.lambda + p.tau * meff + p.delta);
    if p.pairwise_sync {
        t += hop_sum * (p.lambda_zero + p.delta);
    }
    if di < d {
        t += p.shuffle_time(m * (1u64 << d) as f64);
    }
    t + p.barrier_time(d)
}

/// Full multiphase complete exchange under store and forward.
pub fn multiphase_saf_time(p: &MachineParams, m: f64, d: u32, dims: &[u32]) -> f64 {
    let total: u32 = dims.iter().sum();
    assert_eq!(total, d, "partition {dims:?} does not sum to {d}");
    dims.iter().map(|&di| partial_exchange_saf_time(p, m, di, d)).sum()
}

/// Best partition under store and forward, by enumeration.
pub fn best_saf_partition(p: &MachineParams, m: f64, d: u32) -> (Vec<u32>, f64) {
    let mut best: Option<(Vec<u32>, f64)> = None;
    for part in mce_partitions::partitions(d) {
        let t = multiphase_saf_time(p, m, d, part.parts());
        if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
            best = Some((part.parts().to_vec(), t));
        }
    }
    best.expect("at least one partition")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiphase_time;

    #[test]
    fn byte_hop_volume_is_partition_invariant() {
        // τ contribution = τ m d 2^(d-1) for every partition.
        let mut p = MachineParams::ipsc860();
        p.lambda = 0.0;
        p.lambda_zero = 0.0;
        p.delta = 0.0;
        p.rho = 0.0;
        p.barrier_per_dim = 0.0;
        p.pairwise_sync = false;
        let d = 6u32;
        let m = 10.0;
        let reference = p.tau * m * (d as f64) * (1u64 << (d - 1)) as f64;
        for part in mce_partitions::partitions(d) {
            let t = multiphase_saf_time(&p, m, d, part.parts());
            assert!((t - reference).abs() < 1e-9, "{part}: {t} vs {reference}");
        }
    }

    #[test]
    fn standard_exchange_is_identical_under_both_disciplines() {
        // All its transmissions are one hop.
        let p = MachineParams::ipsc860();
        for m in [1.0, 40.0, 400.0] {
            let ones = vec![1u32; 6];
            let circuit = multiphase_time(&p, m, 6, &ones);
            let saf = multiphase_saf_time(&p, m, 6, &ones);
            assert!((circuit - saf).abs() < 1e-9, "m={m}");
        }
    }

    #[test]
    fn saf_optimum_avoids_coarse_partitions() {
        // With byte-hops partition-invariant, the per-hop startup term
        // λ·Σ d_i 2^(d_i - 1) rules out coarse plans: {6} pays 192
        // hop-startups where {2,2,2} pays 12. The SAF optimum sits at
        // fine-to-medium partitions and is NEVER the singleton.
        let p = MachineParams::ipsc860();
        for m in [1.0, 40.0, 160.0, 400.0] {
            let (best, t_best) = best_saf_partition(&p, m, 6);
            assert_ne!(best, vec![6], "m={m}");
            assert!(best.iter().all(|&di| di <= 3), "m={m}: {best:?}");
            // And it beats the singleton, decisively for small blocks
            // (at 400 B the τ·byte-hop volume, equal for all plans,
            // swamps the startup difference).
            let t_flat = multiphase_saf_time(&p, m, 6, &[6]);
            assert!(t_flat > t_best * 1.05, "m={m}");
            if m <= 40.0 {
                assert!(t_flat / t_best > 2.0, "m={m}");
            }
        }
    }

    #[test]
    fn circuit_switching_enables_the_big_multiphase_win() {
        // At the paper's headline point (d=7, m=40) circuit switching
        // admits a plan >2x faster than Standard Exchange. Under store
        // and forward the best plan's edge over SE is much smaller and
        // comes from barrier/shuffle amortization, not data volume.
        let p = MachineParams::ipsc860();
        let ones = vec![1u32; 7];
        let se_circuit = multiphase_time(&p, 40.0, 7, &ones);
        let circuit_best = crate::best_partition(&p, 40.0, 7).1;
        assert!(se_circuit / circuit_best > 2.0);
        let (saf_dims, saf_best) = best_saf_partition(&p, 40.0, 7);
        assert!(saf_dims.iter().all(|&di| di <= 3), "{saf_dims:?}");
        // Even the best SAF plan is well behind the circuit-switched
        // best (22.5 ms vs 16.1 ms at this operating point).
        assert!(saf_best > 1.3 * circuit_best, "saf {saf_best} vs circuit {circuit_best}");
    }

    #[test]
    fn ocs_pays_distance_multiplicatively() {
        let p = MachineParams::hypothetical();
        let d = 5u32;
        let m = 100.0;
        let circuit = crate::optimal_cs_time(&p, m, d);
        let saf = multiphase_saf_time(&p, m, d, &[d]);
        // SAF multiplies the whole (λ + τm) by the hop count.
        assert!(saf > 2.0 * circuit, "saf {saf} vs circuit {circuit}");
    }
}
