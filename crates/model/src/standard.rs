//! Eq. (1): the Standard Exchange algorithm.

use crate::MachineParams;

/// Predicted time for the Standard Exchange algorithm (Johnsson & Ho)
/// on a dimension-`d` cube with block size `m` bytes:
///
/// ```text
/// t_SE(m, d) = d ( λ + (τ + 2ρ) m 2^(d-1) + δ )
/// ```
///
/// `d` transmissions of `m 2^(d-1)` bytes, each over distance 1, plus
/// `d` shuffles of all `2^d` blocks (`ρ m 2^d = 2ρ m 2^(d-1)` each).
/// This is the *raw* Eq. (1), without pairwise-sync or barrier costs;
/// on a machine requiring those, model Standard Exchange as the
/// all-ones partition via [`crate::multiphase_time`].
pub fn standard_exchange_time(p: &MachineParams, m: f64, d: u32) -> f64 {
    assert!(d >= 1, "standard exchange needs d >= 1");
    let half_n = (1u64 << (d - 1)) as f64;
    (d as f64) * (p.lambda + (p.tau + 2.0 * p.rho) * m * half_n + p.delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_value_at_m24_d6() {
        // Section 5.1: "For 24 bytes the Standard algorithm takes
        // 15144 µsec." on the hypothetical machine.
        let p = MachineParams::hypothetical();
        let t = standard_exchange_time(&p, 24.0, 6);
        assert_eq!(t.round() as u64, 15144);
    }

    #[test]
    fn zero_block_cost_is_pure_startup() {
        let p = MachineParams::hypothetical();
        let t = standard_exchange_time(&p, 0.0, 5);
        assert!((t - 5.0 * (200.0 + 20.0)).abs() < 1e-9);
    }

    #[test]
    fn linear_in_block_size() {
        let p = MachineParams::ipsc860();
        let t0 = standard_exchange_time(&p, 0.0, 6);
        let t1 = standard_exchange_time(&p, 1.0, 6);
        let t2 = standard_exchange_time(&p, 2.0, 6);
        assert!(((t2 - t1) - (t1 - t0)).abs() < 1e-9, "affine in m");
        // Slope per byte: d (τ + 2ρ) 2^(d-1).
        let slope = 6.0 * (0.394 + 1.08) * 32.0;
        assert!(((t1 - t0) - slope).abs() < 1e-9);
    }

    #[test]
    fn d1_is_single_neighbor_swap() {
        let p = MachineParams::hypothetical();
        // d = 1: one transmission of m bytes + one 2-block shuffle.
        let t = standard_exchange_time(&p, 10.0, 1);
        assert!((t - (200.0 + (1.0 + 2.0) * 10.0 + 20.0)).abs() < 1e-9);
    }
}
