//! Parameter sweeps over block size × partition, the raw material of
//! the paper's Figures 4-6.

use crate::{multiphase_time, MachineParams};
use mce_partitions::{partitions, Partition};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Predicted time of one partition at one block size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Block size in bytes.
    pub block_size: f64,
    /// Predicted time in microseconds.
    pub predicted_us: f64,
}

/// The prediction curve of one partition over a block-size range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// The partition this curve belongs to, e.g. `{3,4}`.
    pub partition: Partition,
    /// Curve samples in increasing block-size order.
    pub points: Vec<SweepPoint>,
}

/// Sweep all partitions of `d` over block sizes
/// `0, step, 2·step, ..., m_max`.
pub fn sweep(p: &MachineParams, d: u32, m_max: f64, step: f64) -> Vec<SweepRow> {
    sweep_by(d, m_max, step, |m, part| multiphase_time(p, m, d, part.parts()))
}

/// [`sweep`] under an arbitrary pricing function `price(m, partition)`
/// — the shared grid core behind the clean and conditioned
/// (`crate::conditioned`) sweeps.
pub fn sweep_by(
    d: u32,
    m_max: f64,
    step: f64,
    price: impl Fn(f64, &Partition) -> f64 + Sync,
) -> Vec<SweepRow> {
    assert!(step > 0.0);
    // Each size is computed as `i · step` rather than by repeated
    // `m += step` accumulation: for non-dyadic steps (0.1, 0.3, ...)
    // the accumulated error can push the running value past `m_max`
    // one iteration early and silently drop the final sample. The
    // epsilon absorbs the one-rounding error of the division itself.
    let sizes: Vec<f64> = if m_max.is_nan() || m_max < 0.0 {
        // Negative or NaN bound: empty grid, matching the old
        // `while m <= m_max` loop (NaN comparisons are false).
        Vec::new()
    } else {
        let last = (m_max / step + 1e-9).floor() as usize;
        (0..=last).map(|i| i as f64 * step).collect()
    };
    // One independent prediction curve per partition: fan the rows
    // out across cores. Each row's arithmetic is identical to the
    // sequential version, so results are bit-equal, just reordered in
    // time.
    partitions(d)
        .into_par_iter()
        .map(|part| {
            let points = sizes
                .iter()
                .map(|&m| SweepPoint { block_size: m, predicted_us: price(m, &part) })
                .collect();
            SweepRow { partition: part, points }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_partitions::count;

    #[test]
    fn sweep_covers_all_partitions_and_sizes() {
        let p = MachineParams::ipsc860();
        let rows = sweep(&p, 6, 400.0, 8.0);
        assert_eq!(rows.len() as u64, count(6));
        for row in &rows {
            assert_eq!(row.points.len(), 51);
            assert!((row.points[0].block_size - 0.0).abs() < 1e-12);
            assert!((row.points[50].block_size - 400.0).abs() < 1e-12);
            // Affine in m: strictly increasing.
            for w in row.points.windows(2) {
                assert!(w[1].predicted_us > w[0].predicted_us);
            }
        }
    }

    #[test]
    fn non_dyadic_step_keeps_the_final_sample() {
        // Regression: with `m += step` accumulation, 0.1 + 0.1 + 0.1
        // lands at 0.30000000000000004 > 0.3 and the m_max sample was
        // silently skipped. The grid must end at (approximately) m_max.
        let p = MachineParams::ipsc860();
        let rows = sweep(&p, 3, 0.3, 0.1);
        for row in &rows {
            assert_eq!(row.points.len(), 4, "0, 0.1, 0.2, 0.3");
            let last = row.points.last().unwrap().block_size;
            assert!((last - 0.3).abs() < 1e-9, "final sample {last} != 0.3");
        }
        // A longer non-representable ladder still hits every multiple.
        let rows = sweep(&p, 3, 40.0, 0.1);
        for row in &rows {
            assert_eq!(row.points.len(), 401);
            let last = row.points.last().unwrap().block_size;
            assert!((last - 40.0).abs() < 1e-9, "final sample {last} != 40.0");
        }
        // Degenerate bounds give empty grids, as the old loop did.
        for bad in [-1.0, f64::NAN, f64::NEG_INFINITY] {
            let rows = sweep(&p, 3, bad, 0.1);
            assert!(rows.iter().all(|r| r.points.is_empty()), "m_max={bad}");
        }
    }

    #[test]
    fn curves_are_affine() {
        let p = MachineParams::ipsc860();
        let rows = sweep(&p, 5, 100.0, 10.0);
        for row in &rows {
            let pts = &row.points;
            let slope0 = pts[1].predicted_us - pts[0].predicted_us;
            for w in pts.windows(2) {
                assert!(
                    ((w[1].predicted_us - w[0].predicted_us) - slope0).abs() < 1e-6,
                    "{} not affine",
                    row.partition
                );
            }
        }
    }
}
