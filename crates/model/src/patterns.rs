//! Cost models for the other §9 communication patterns.
//!
//! The paper closes by asking how "the all-to-all broadcast,
//! one-to-all personalized and one-to-all broadcast patterns" fare
//! under the multiphase technique. These models price the multiphase
//! generalization of each pattern; the program builders live in
//! `mce-core::collectives`.
//!
//! All three patterns admit the same partition trick as the complete
//! exchange:
//!
//! * **all-to-all broadcast (allgather)** — phase `i` exchanges each
//!   node's accumulated block set (`m·2^(Σ_{j<i} d_j)` bytes) with its
//!   `2^(d_i) - 1` subcube partners. `{1,…,1}` is recursive doubling;
//!   `{d}` is the flat XOR schedule.
//! * **one-to-all personalized (scatter)** — phase `i` forwards each
//!   current holder's sub-tree portions (`m·2^(lo_i)` bytes each) to
//!   `2^(d_i) - 1` new holders. `{1,…,1}` is the binomial tree;
//!   `{d}` is the root sending `2^d - 1` blocks directly.
//! * **one-to-all broadcast** — phase `i` has each holder replicate
//!   the full `M` bytes to `2^(d_i) - 1` partners. `{1,…,1}` is the
//!   binomial tree (optimal here for every `M` among multiphase plans;
//!   the scatter-allgather algorithm beats it for large `M`).

use crate::{average_schedule_distance, MachineParams};

/// Per-exchange overhead used by the patterns: pairwise-synchronized
/// startup when the machine requires it (allgather steps are true
/// exchanges), plain startup otherwise.
fn exchange_overhead(p: &MachineParams, dims_crossed: f64) -> f64 {
    p.lambda_eff() + p.delta_eff() * dims_crossed
}

/// One-directional send overhead (scatter / broadcast steps).
fn send_overhead(p: &MachineParams, dims_crossed: f64) -> f64 {
    p.lambda + p.delta * dims_crossed
}

/// Multiphase **allgather** (all-to-all broadcast) time for partition
/// `dims` on a dimension-`d` cube with per-node block size `m`.
///
/// Phases process label fields from least-significant upward; the
/// accumulated set doubles `d_i`-fold per phase and no shuffles are
/// needed (incoming sets are contiguous in source-major layout).
pub fn allgather_time(p: &MachineParams, m: f64, d: u32, dims: &[u32]) -> f64 {
    let total: u32 = dims.iter().sum();
    assert_eq!(total, d, "partition {dims:?} does not sum to {d}");
    let mut t = 0.0;
    let mut accumulated = m; // bytes currently held per node
    for &di in dims.iter().rev() {
        // LSB-first: reverse of the complete-exchange convention.
        let steps = ((1u64 << di) - 1) as f64;
        t += steps * (exchange_overhead(p, average_schedule_distance(di)) + p.tau * accumulated);
        accumulated *= (1u64 << di) as f64;
    }
    t + p.barrier_time(d)
}

/// Multiphase **scatter** (one-to-all personalized) time: the root
/// distributes a distinct `m`-byte block to every node.
///
/// Phases process fields from most-significant downward; in phase `i`
/// every current holder sends `2^(d_i) - 1` sub-tree portions of
/// `m·2^(lo_i)` bytes each, sequentially.
pub fn scatter_time(p: &MachineParams, m: f64, d: u32, dims: &[u32]) -> f64 {
    let total: u32 = dims.iter().sum();
    assert_eq!(total, d, "partition {dims:?} does not sum to {d}");
    let mut t = 0.0;
    let mut lo = d;
    for &di in dims {
        lo -= di;
        let portion = m * (1u64 << lo) as f64;
        // Holders send to subcube partners at XOR offsets j << lo;
        // average circuit length over j = 1..2^di-1.
        let steps = ((1u64 << di) - 1) as f64;
        t += steps * (send_overhead(p, average_schedule_distance(di)) + p.tau * portion);
    }
    t + p.barrier_time(d)
}

/// Multiphase **broadcast** (one-to-all) time: every node must receive
/// the same `m` bytes from the root.
pub fn broadcast_time(p: &MachineParams, m: f64, d: u32, dims: &[u32]) -> f64 {
    let total: u32 = dims.iter().sum();
    assert_eq!(total, d, "partition {dims:?} does not sum to {d}");
    let mut t = 0.0;
    for &di in dims {
        let steps = ((1u64 << di) - 1) as f64;
        t += steps * (send_overhead(p, average_schedule_distance(di)) + p.tau * m);
    }
    t + p.barrier_time(d)
}

/// The van de Geijn large-message broadcast: scatter `m/2^d`-byte
/// pieces down a binomial tree, then allgather them back. Beats the
/// binomial-tree broadcast once `τ·m` dominates startup.
pub fn scatter_allgather_broadcast_time(p: &MachineParams, m: f64, d: u32) -> f64 {
    let piece = m / (1u64 << d) as f64;
    let ones = vec![1u32; d as usize];
    scatter_time(p, piece, d, &ones) + allgather_time(p, piece, d, &ones) - p.barrier_time(d)
    // the two halves share one barrier
}

/// Best partition for a pattern by exhaustive enumeration.
pub fn best_pattern_partition(
    p: &MachineParams,
    m: f64,
    d: u32,
    cost: impl Fn(&MachineParams, f64, u32, &[u32]) -> f64,
) -> (Vec<u32>, f64) {
    let mut best: Option<(Vec<u32>, f64)> = None;
    for part in mce_partitions::partitions(d) {
        let t = cost(p, m, d, part.parts());
        if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
            best = Some((part.parts().to_vec(), t));
        }
    }
    best.expect("at least one partition")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_special_cases() {
        let p = MachineParams::hypothetical();
        let d = 4u32;
        let m = 10.0;
        // Recursive doubling {1,1,1,1}: Σ_{i=0..3} (λ + τ m 2^i + δ).
        let rd = allgather_time(&p, m, d, &[1, 1, 1, 1]);
        let expect: f64 = (0..4).map(|i| 200.0 + 1.0 * m * (1u64 << i) as f64 + 20.0).sum();
        assert!((rd - expect).abs() < 1e-9);
        // Flat XOR {4}: (2^4 - 1)(λ + τ m + δ·avg).
        let flat = allgather_time(&p, m, d, &[4]);
        let expect = 15.0 * (200.0 + m + 20.0 * average_schedule_distance(4));
        assert!((flat - expect).abs() < 1e-9);
    }

    #[test]
    fn allgather_multiphase_interpolates() {
        // Small m: recursive doubling wins (few startups... note RD has
        // d startups vs flat's 2^d - 1). Large m: RD still moves the
        // same total bytes as flat — both move m(2^d - 1) — so flat
        // never wins on bytes; it loses on startups. The interesting
        // regime is distance: flat pays higher average distance.
        let p = MachineParams::ipsc860();
        for m in [1.0, 100.0, 10_000.0] {
            let (best, _) = best_pattern_partition(&p, m, 6, allgather_time);
            assert_eq!(best, vec![1, 1, 1, 1, 1, 1], "m={m}: RD moves minimal startups AND bytes");
        }
    }

    #[test]
    fn scatter_special_cases() {
        let p = MachineParams::hypothetical();
        let d = 3u32;
        let m = 8.0;
        // Binomial {1,1,1}: portions 4m, 2m, m.
        let tree = scatter_time(&p, m, d, &[1, 1, 1]);
        let expect: f64 = (200.0 + 4.0 * m + 20.0) + (200.0 + 2.0 * m + 20.0) + (200.0 + m + 20.0);
        assert!((tree - expect).abs() < 1e-9, "{tree} vs {expect}");
        // Direct {3}: 7 sends of m bytes at average distance 12/7.
        let direct = scatter_time(&p, m, d, &[3]);
        let expect = 7.0 * (200.0 + m + 20.0 * average_schedule_distance(3));
        assert!((direct - expect).abs() < 1e-9);
    }

    #[test]
    fn scatter_hull_degenerates_to_binomial_tree() {
        // The answer to the paper's §9 open question for this pattern:
        // the binomial tree ({1,…,1}) sends the same total bytes from
        // the root as the direct algorithm — m(2^d - 1) — with fewer
        // startups and less distance, so it dominates at EVERY block
        // size. The multiphase trade-off only exists for the complete
        // exchange, where the neighbor algorithm pays extra volume
        // (m·d·2^(d-1)) for its startup savings.
        let p = MachineParams::ipsc860();
        for m in [1.0, 40.0, 400.0, 100_000.0] {
            let (best, _) = best_pattern_partition(&p, m, 6, scatter_time);
            assert_eq!(best, vec![1; 6], "m={m}");
        }
        // Total root bytes really are equal for the two extremes.
        let tree_bytes: u64 = (0..6).map(|lo| 1u64 << lo).sum();
        assert_eq!(tree_bytes, (1 << 6) - 1);
    }

    #[test]
    fn broadcast_binomial_is_best_multiphase() {
        let p = MachineParams::ipsc860();
        for m in [1.0, 1000.0] {
            let (best, _) = best_pattern_partition(&p, m, 5, broadcast_time);
            assert_eq!(best, vec![1; 5], "binomial minimizes both startups and bytes");
        }
    }

    #[test]
    fn scatter_allgather_beats_binomial_for_large_messages() {
        let p = MachineParams::ipsc860();
        let d = 6u32;
        let small = 64.0;
        let large = 100_000.0;
        let ones = vec![1u32; d as usize];
        assert!(
            broadcast_time(&p, small, d, &ones) < scatter_allgather_broadcast_time(&p, small, d),
            "binomial wins small"
        );
        assert!(
            scatter_allgather_broadcast_time(&p, large, d) < broadcast_time(&p, large, d, &ones),
            "scatter-allgather wins large"
        );
    }

    #[test]
    fn complete_exchange_dominates_all_patterns() {
        // §3: the complete exchange "is an upper bound for the time
        // required by any pattern". Check against our multiphase costs
        // at equal block size with each pattern's best plan.
        let p = MachineParams::ipsc860();
        let d = 6u32;
        for m in [8.0, 64.0, 256.0] {
            let ce = crate::multiphase_time(&p, m, d, crate::best_partition(&p, m, d).0.parts());
            for cost in [allgather_time, scatter_time, broadcast_time] {
                let (_, t) = best_pattern_partition(&p, m, d, cost);
                assert!(t <= ce * 1.001, "pattern beats CE? m={m} t={t} ce={ce}");
            }
        }
    }
}
