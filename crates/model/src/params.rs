//! Machine performance parameters.
//!
//! Section 4.3 of the paper defines four parameters (`τ`, `ρ`, `λ`,
//! `δ`); Section 7.4 reports the values measured on the Intel iPSC-860
//! and the extra constants introduced by the implementation (zero-byte
//! message startup, pairwise synchronization, global barrier cost).

use serde::{Deserialize, Serialize};

/// Performance parameters of a circuit-switched hypercube.
///
/// A message of `m` bytes crossing `h` dimensions takes
/// `λ + τ m + δ h` µs; permuting `m` bytes in memory takes `ρ m` µs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Human-readable machine name.
    pub name: String,
    /// Message startup (latency), µs. Paper symbol `λ`.
    pub lambda: f64,
    /// Startup of a zero-byte message, µs. On the iPSC-860 this is
    /// "significantly better" than `λ` (82.5 vs 95.0).
    pub lambda_zero: f64,
    /// Transmission cost, µs per byte. Paper symbol `τ`.
    pub tau: f64,
    /// Distance impact, µs per dimension crossed. Paper symbol `δ`.
    pub delta: f64,
    /// Data permutation (shuffle) cost, µs per byte. Paper symbol `ρ`.
    pub rho: f64,
    /// Global synchronization cost per cube dimension, µs
    /// (measured at 150 µs/dimension on the iPSC-860).
    pub barrier_per_dim: f64,
    /// Whether every data exchange is preceded by an exchange of
    /// zero-byte "pairwise synchronization" messages (Section 7.2).
    /// When true, each pairwise exchange pays `λ + λ₀` startup and
    /// crosses the circuit twice (`2δ` per dimension).
    pub pairwise_sync: bool,
    /// UNFORCED messages larger than this threshold pay a
    /// reserve-acknowledge round trip before the data transfer
    /// (Section 7.1; ~100 bytes on the iPSC-860).
    pub unforced_threshold: usize,
}

impl MachineParams {
    /// Measured Intel iPSC-860 parameters (paper, Section 7.4), with
    /// FORCED messages and all receives pre-posted.
    pub fn ipsc860() -> Self {
        MachineParams {
            name: "Intel iPSC-860".to_string(),
            lambda: 95.0,
            lambda_zero: 82.5,
            tau: 0.394,
            delta: 10.3,
            rho: 0.54,
            barrier_per_dim: 150.0,
            pairwise_sync: true,
            unforced_threshold: 100,
        }
    }

    /// The hypothetical machine of Section 4.3: `τ = ρ = 1`, `λ = 200`,
    /// `δ = 20`, used for the worked examples. No pairwise sync or
    /// barrier overhead is modelled there.
    pub fn hypothetical() -> Self {
        MachineParams {
            name: "hypothetical (Section 4.3)".to_string(),
            lambda: 200.0,
            lambda_zero: 0.0,
            tau: 1.0,
            delta: 20.0,
            rho: 1.0,
            barrier_per_dim: 0.0,
            pairwise_sync: false,
            unforced_threshold: 100,
        }
    }

    /// An Ncube-2-flavoured parameter set. The paper poses evaluating
    /// the multiphase approach on the Ncube-2 as an open practical
    /// question (Section 9); these values follow published Ncube-2
    /// characteristics (slower links, lower startup) and are intended
    /// for what-if exploration, not as measurements.
    pub fn ncube2_like() -> Self {
        MachineParams {
            name: "Ncube-2 (projected)".to_string(),
            lambda: 160.0,
            lambda_zero: 150.0,
            tau: 0.45,
            delta: 2.0,
            rho: 0.40,
            barrier_per_dim: 100.0,
            pairwise_sync: true,
            unforced_threshold: 100,
        }
    }

    /// Effective per-exchange startup: `λ` plus, when pairwise
    /// synchronization is enabled, the zero-byte sync message `λ₀`.
    /// On the iPSC-860: `95.0 + 82.5 = 177.5` (paper, Section 7.4).
    #[inline]
    pub fn lambda_eff(&self) -> f64 {
        if self.pairwise_sync {
            self.lambda + self.lambda_zero
        } else {
            self.lambda
        }
    }

    /// Effective distance impact per dimension: doubled when the
    /// zero-byte sync message also crosses the circuit.
    /// On the iPSC-860: `2 × 10.3 = 20.6` (paper, Section 7.4).
    #[inline]
    pub fn delta_eff(&self) -> f64 {
        if self.pairwise_sync {
            2.0 * self.delta
        } else {
            self.delta
        }
    }

    /// Time for one message of `m` bytes across `h` dimensions
    /// (no synchronization overhead): `λ + τ m + δ h`.
    #[inline]
    pub fn message_time(&self, m: f64, h: f64) -> f64 {
        self.lambda + self.tau * m + self.delta * h
    }

    /// Time for a global synchronization on a dimension-`d` cube.
    #[inline]
    pub fn barrier_time(&self, d: u32) -> f64 {
        self.barrier_per_dim * d as f64
    }

    /// Time to permute `bytes` bytes of data in local memory.
    #[inline]
    pub fn shuffle_time(&self, bytes: f64) -> f64 {
        self.rho * bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipsc860_effective_values_match_paper() {
        let p = MachineParams::ipsc860();
        assert!((p.lambda_eff() - 177.5).abs() < 1e-12);
        assert!((p.delta_eff() - 20.6).abs() < 1e-12);
    }

    #[test]
    fn hypothetical_has_no_sync_overhead() {
        let p = MachineParams::hypothetical();
        assert_eq!(p.lambda_eff(), 200.0);
        assert_eq!(p.delta_eff(), 20.0);
        assert_eq!(p.barrier_time(6), 0.0);
    }

    #[test]
    fn message_time_formula() {
        let p = MachineParams::ipsc860();
        // 1000-byte message across 3 dimensions.
        let t = p.message_time(1000.0, 3.0);
        assert!((t - (95.0 + 394.0 + 30.9)).abs() < 1e-9);
    }

    #[test]
    fn barrier_and_shuffle() {
        let p = MachineParams::ipsc860();
        assert!((p.barrier_time(7) - 1050.0).abs() < 1e-12);
        assert!((p.shuffle_time(1000.0) - 540.0).abs() < 1e-12);
    }

    #[test]
    fn presets_are_distinct() {
        let a = MachineParams::ipsc860();
        let b = MachineParams::hypothetical();
        let c = MachineParams::ncube2_like();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
