//! The hull of optimality: which partition is fastest at each block
//! size (paper, Section 8).
//!
//! "Although we have measured the performance of all combinations, to
//! avoid congested plots we show only those combinations that form the
//! hull of optimality (i.e. only the best combination for every
//! blocksize)."

use crate::{multiphase_time, MachineParams};
use mce_partitions::{partitions, Partition};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One face of the hull: a half-open block-size interval on which a
/// single partition is predicted optimal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HullFace {
    /// The optimal partition on this interval.
    pub partition: Partition,
    /// Inclusive lower end of the block-size interval (bytes).
    pub from: f64,
    /// Exclusive upper end (bytes); `f64::INFINITY` for the last face
    /// (serialized as JSON `null`).
    #[serde(with = "infinite_as_null")]
    pub to: f64,
}

/// JSON has no infinity; map `f64::INFINITY <-> null` so hull tables
/// survive serialization ("stored for repeated future use", §6).
mod infinite_as_null {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_some(v)
        } else {
            s.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::INFINITY))
    }
}

/// Find the predicted-optimal partition for one block size by
/// exhaustive enumeration over all `p(d)` partitions (Section 6).
///
/// Ties are broken toward the earlier partition in reverse-lexicographic
/// enumeration order (i.e. toward fewer phases).
pub fn best_partition(p: &MachineParams, m: f64, d: u32) -> (Partition, f64) {
    best_partition_by(d, |part| multiphase_time(p, m, d, part.parts()))
}

/// [`best_partition`] under an arbitrary pricing function — the shared
/// enumeration core behind the clean model, the conditioned model
/// (`crate::conditioned`) and any future pricing variant. `price` must
/// be a pure function of the partition.
pub fn best_partition_by(d: u32, price: impl Fn(&Partition) -> f64 + Sync) -> (Partition, f64) {
    let candidates = partitions(d);
    // Fan candidate-plan evaluation across cores once the partition
    // count justifies thread startup (p(24) ≈ 1575); the reduction is
    // sequential either way, so the tie-break toward the earlier
    // partition is preserved exactly.
    let eval = |part: Partition| {
        let t = price(&part);
        (part, t)
    };
    let timed: Vec<(Partition, f64)> = if candidates.len() >= 1024 {
        candidates.into_par_iter().map(eval).collect()
    } else {
        candidates.into_iter().map(eval).collect()
    };
    let mut best: Option<(Partition, f64)> = None;
    for (part, t) in timed {
        match &best {
            Some((_, bt)) if *bt <= t => {}
            _ => best = Some((part, t)),
        }
    }
    best.expect("d >= 1 always yields at least one partition")
}

/// Compute the hull of optimality over `[0, m_max]` by scanning block
/// sizes at `step`-byte resolution and merging runs.
///
/// Because every plan's predicted time is affine in `m`, the true hull
/// is a lower envelope of lines and each partition occupies at most one
/// contiguous interval; scanning at fine resolution recovers the
/// breakpoints to within `step` bytes.
pub fn optimality_hull(p: &MachineParams, d: u32, m_max: f64, step: f64) -> Vec<HullFace> {
    optimality_hull_by(d, m_max, step, |m, part| multiphase_time(p, m, d, part.parts()))
}

/// [`optimality_hull`] under an arbitrary pricing function
/// `price(m, partition)` — the shared scan-and-merge core behind the
/// clean and conditioned hulls. The pricing must be affine in `m` for
/// the merged faces to be the true lower envelope (every model in this
/// crate is).
pub fn optimality_hull_by(
    d: u32,
    m_max: f64,
    step: f64,
    price: impl Fn(f64, &Partition) -> f64 + Sync,
) -> Vec<HullFace> {
    assert!(step > 0.0 && m_max >= 0.0);
    // The per-size winners are independent: compute them in parallel
    // (the planner's hull precompute is the expensive call site), then
    // merge runs sequentially. The size list accumulates with the
    // same float additions as the sequential loop, so breakpoints are
    // bit-identical.
    let sizes: Vec<f64> = {
        let mut v = Vec::new();
        let mut m = 0.0;
        while m <= m_max {
            v.push(m);
            m += step;
        }
        v
    };
    let winners: Vec<Partition> =
        sizes.par_iter().map(|&m| best_partition_by(d, |part| price(m, part)).0).collect();
    let mut faces: Vec<HullFace> = Vec::new();
    for (&m, part) in sizes.iter().zip(winners) {
        match faces.last_mut() {
            Some(face) if face.partition == part => face.to = m + step,
            _ => faces.push(HullFace { partition: part, from: m, to: m + step }),
        }
    }
    if let Some(last) = faces.last_mut() {
        last.to = f64::INFINITY;
    }
    faces
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hull_partitions(d: u32) -> Vec<String> {
        let p = MachineParams::ipsc860();
        optimality_hull(&p, d, 400.0, 1.0).iter().map(|f| f.partition.to_string()).collect()
    }

    #[test]
    fn figure_4_hull_d5() {
        // "When d = 5 (Figure 4) the combination {2,3} is optimal for
        // block sizes less than 100 bytes" then {5}.
        let faces = hull_partitions(5);
        assert_eq!(faces, vec!["{3,2}", "{5}"]);
        let p = MachineParams::ipsc860();
        let hull = optimality_hull(&p, 5, 400.0, 1.0);
        let breakpoint = hull[0].to;
        assert!(breakpoint > 60.0 && breakpoint < 140.0, "crossover near 100 B, got {breakpoint}");
    }

    #[test]
    fn figure_5_hull_d6() {
        // "For d = 6, three combinations are optimal: {2,2,2}, {3,3}
        // and {6}. The last of these is optimal for message sizes
        // beyond about 140 bytes. The first is optimal only for
        // extremely small sizes."
        let faces = hull_partitions(6);
        assert_eq!(faces, vec!["{2,2,2}", "{3,3}", "{6}"]);
        let p = MachineParams::ipsc860();
        let hull = optimality_hull(&p, 6, 400.0, 1.0);
        assert!(hull[0].to < 40.0, "{{2,2,2}} only for extremely small sizes");
        assert!(hull[1].to > 100.0 && hull[1].to < 200.0, "{{6}} beyond about 140 B");
    }

    #[test]
    fn figure_6_hull_d7() {
        // "we again have three optimal combinations {2,2,3}, {3,4} and
        // {7}, with {7} optimal beyond 160 bytes and {2,2,3} optimal
        // for 0 to 12 bytes."
        let faces = hull_partitions(7);
        assert_eq!(faces, vec!["{3,2,2}", "{4,3}", "{7}"]);
        let p = MachineParams::ipsc860();
        let hull = optimality_hull(&p, 7, 400.0, 1.0);
        assert!(hull[0].to < 30.0, "{{2,2,3}} for small sizes only, got {}", hull[0].to);
        assert!(
            hull[1].to > 120.0 && hull[1].to < 220.0,
            "{{7}} beyond ~160 B, got {}",
            hull[1].to
        );
    }

    #[test]
    fn standard_exchange_never_on_ipsc_hull() {
        // "The Standard Exchange Algorithm ... is never optimal on the
        // iPSC-860 for dimensions 5-7."
        for d in 5..=7u32 {
            assert!(
                !hull_partitions(d)
                    .iter()
                    .any(|s| s.chars().filter(|&c| c == '1').count() == d as usize),
                "d={d}"
            );
        }
    }

    #[test]
    fn best_partition_agrees_with_exhaustive_min() {
        let p = MachineParams::ipsc860();
        for m in [0.0, 10.0, 40.0, 100.0, 399.0] {
            let (part, t) = best_partition(&p, m, 6);
            for q in partitions(6) {
                assert!(multiphase_time(&p, m, 6, q.parts()) >= t - 1e-9, "m={m} {q} beats {part}");
            }
        }
    }

    #[test]
    fn faces_tile_the_range() {
        let p = MachineParams::ipsc860();
        let hull = optimality_hull(&p, 6, 300.0, 0.5);
        assert_eq!(hull[0].from, 0.0);
        for w in hull.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        assert_eq!(hull.last().unwrap().to, f64::INFINITY);
    }

    #[test]
    fn large_blocks_favor_singleton() {
        let p = MachineParams::ipsc860();
        for d in 2..=8u32 {
            let (part, _) = best_partition(&p, 10_000.0, d);
            assert!(part.is_optimal_circuit_switched(), "d={d}: {part}");
        }
    }
}
