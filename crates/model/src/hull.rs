//! The hull of optimality: which partition is fastest at each block
//! size (paper, Section 8).
//!
//! "Although we have measured the performance of all combinations, to
//! avoid congested plots we show only those combinations that form the
//! hull of optimality (i.e. only the best combination for every
//! blocksize)."

use crate::{multiphase_time, MachineParams};
use mce_partitions::{partitions, Partition};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One face of the hull: a half-open block-size interval on which a
/// single partition is predicted optimal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HullFace {
    /// The optimal partition on this interval.
    pub partition: Partition,
    /// Inclusive lower end of the block-size interval (bytes).
    pub from: f64,
    /// Exclusive upper end (bytes); `f64::INFINITY` for the last face
    /// (serialized as JSON `null`).
    #[serde(with = "infinite_as_null")]
    pub to: f64,
}

/// JSON has no infinity; map `f64::INFINITY <-> null` so hull tables
/// survive serialization ("stored for repeated future use", §6).
mod infinite_as_null {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_some(v)
        } else {
            s.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::INFINITY))
    }
}

/// Find the predicted-optimal partition for one block size by
/// exhaustive enumeration over all `p(d)` partitions (Section 6).
///
/// Ties are broken toward the earlier partition in reverse-lexicographic
/// enumeration order (i.e. toward fewer phases).
pub fn best_partition(p: &MachineParams, m: f64, d: u32) -> (Partition, f64) {
    best_partition_by(d, |part| multiphase_time(p, m, d, part.parts()))
}

/// [`best_partition`] under an arbitrary pricing function — the shared
/// enumeration core behind the clean model, the conditioned model
/// (`crate::conditioned`) and any future pricing variant. `price` must
/// be a pure function of the partition.
pub fn best_partition_by(d: u32, price: impl Fn(&Partition) -> f64 + Sync) -> (Partition, f64) {
    let candidates = partitions(d);
    // Fan candidate-plan evaluation across cores once the partition
    // count justifies thread startup (p(24) ≈ 1575); the reduction is
    // sequential either way, so the tie-break toward the earlier
    // partition is preserved exactly.
    let eval = |part: Partition| {
        let t = price(&part);
        (part, t)
    };
    let timed: Vec<(Partition, f64)> = if candidates.len() >= 1024 {
        candidates.into_par_iter().map(eval).collect()
    } else {
        candidates.into_iter().map(eval).collect()
    };
    let mut best: Option<(Partition, f64)> = None;
    for (part, t) in timed {
        match &best {
            Some((_, bt)) if *bt <= t => {}
            _ => best = Some((part, t)),
        }
    }
    best.expect("d >= 1 always yields at least one partition")
}

/// Compute the hull of optimality over `[0, m_max]` by scanning block
/// sizes at `step`-byte resolution and merging runs.
///
/// Because every plan's predicted time is affine in `m`, the true hull
/// is a lower envelope of lines and each partition occupies at most one
/// contiguous interval; scanning at fine resolution recovers the
/// breakpoints to within `step` bytes.
pub fn optimality_hull(p: &MachineParams, d: u32, m_max: f64, step: f64) -> Vec<HullFace> {
    optimality_hull_by(d, m_max, step, |m, part| multiphase_time(p, m, d, part.parts()))
}

/// [`optimality_hull`] under an arbitrary pricing function
/// `price(m, partition)` — the shared scan-and-merge core behind the
/// clean and conditioned hulls. The pricing must be affine in `m` for
/// the merged faces to be the true lower envelope (every model in this
/// crate is).
pub fn optimality_hull_by(
    d: u32,
    m_max: f64,
    step: f64,
    price: impl Fn(f64, &Partition) -> f64 + Sync,
) -> Vec<HullFace> {
    assert!(step > 0.0 && m_max >= 0.0);
    // The per-size winners are independent: compute them in parallel
    // (the planner's hull precompute is the expensive call site), then
    // merge runs sequentially. The size list accumulates with the
    // same float additions as the sequential loop, so breakpoints are
    // bit-identical.
    let sizes: Vec<f64> = {
        let mut v = Vec::new();
        let mut m = 0.0;
        while m <= m_max {
            v.push(m);
            m += step;
        }
        v
    };
    let winners: Vec<Partition> =
        sizes.par_iter().map(|&m| best_partition_by(d, |part| price(m, part)).0).collect();
    let mut faces: Vec<HullFace> = Vec::new();
    for (&m, part) in sizes.iter().zip(winners) {
        match faces.last_mut() {
            Some(face) if face.partition == part => face.to = m + step,
            _ => faces.push(HullFace { partition: part, from: m, to: m + step }),
        }
    }
    if let Some(last) = faces.last_mut() {
        last.to = f64::INFINITY;
    }
    faces
}

/// Index of the face containing block size `m`, by binary search over
/// the face intervals (`from` inclusive, `to` exclusive). `None` only
/// for an empty slice; `m` below the first face clamps to face 0 and
/// `m` at or above the last face's `to` clamps to the last face, so a
/// well-formed hull (first `from = 0`, last `to = ∞`) answers every
/// finite `m`. This is the warm-cache query path of the planner: one
/// `O(log faces)` lookup, no model evaluation.
pub fn face_index(faces: &[HullFace], m: f64) -> Option<usize> {
    if faces.is_empty() {
        return None;
    }
    let i = faces.partition_point(|f| f.to <= m);
    Some(i.min(faces.len() - 1))
}

/// The face containing block size `m`; see [`face_index`].
pub fn face_at(faces: &[HullFace], m: f64) -> Option<&HullFace> {
    face_index(faces, m).map(|i| &faces[i])
}

/// One face of an *affine* hull: the optimal partition on a block-size
/// interval together with the affine coefficients of its prediction,
/// `t(m) = t0 + slope·m`, and its index in enumeration order (for
/// boundary tie-breaks). Produced by [`optimality_hull_affine_by`];
/// serializes like [`HullFace`] (`to = ∞` as JSON `null`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffineHullFace {
    /// The optimal partition on this interval.
    pub partition: Partition,
    /// The partition's index in `partitions(d)` enumeration order;
    /// ties at face boundaries resolve toward the lower index, exactly
    /// as [`best_partition_by`]'s fold does.
    pub enum_index: usize,
    /// Inclusive lower end of the block-size interval (bytes).
    pub from: f64,
    /// Exclusive upper end (bytes); `f64::INFINITY` for the last face.
    #[serde(with = "infinite_as_null")]
    pub to: f64,
    /// Predicted time of this face's partition at `m = 0`, µs.
    pub t0: f64,
    /// Predicted time growth, µs per byte.
    pub slope: f64,
}

impl AffineHullFace {
    /// The face's prediction at block size `m`: `t0 + slope·m`. Two
    /// float ops — this is what makes a warm planner query free of
    /// model evaluation; it reproduces the model to within float
    /// re-association of the affine form (≤ 1 ulp-scale, not bit-equal;
    /// the planner's exact mode re-evaluates the model instead).
    pub fn time_at(&self, m: f64) -> f64 {
        self.t0 + self.slope * m
    }

    /// Drop the affine coefficients, keeping the interval.
    pub fn to_face(&self) -> HullFace {
        HullFace { partition: self.partition.clone(), from: self.from, to: self.to }
    }
}

/// [`face_index`] over affine faces.
pub fn affine_face_index(faces: &[AffineHullFace], m: f64) -> Option<usize> {
    if faces.is_empty() {
        return None;
    }
    let i = faces.partition_point(|f| f.to <= m);
    Some(i.min(faces.len() - 1))
}

/// Compute the *exact* hull of optimality as a lower envelope of
/// lines, with no block-size scan. Every pricing in this crate is
/// affine in `m`, so each partition is one line `t0 + slope·m`
/// (sampled at `m = 0` and `m = 1`); the candidate breakpoints are the
/// pairwise line crossings at positive `m`, and probing the interior
/// of each inter-crossing interval (where no two lines tie) recovers
/// the envelope's winner per interval. Unlike [`optimality_hull_by`]
/// the breakpoints are exact intersections, not `step`-resolution
/// approximations, and the faces carry their affine coefficients —
/// this is the planner's hull precompute (`mce_plan`).
///
/// Ties inside an interval (coincident lines) resolve toward the
/// earlier partition in enumeration order, matching
/// [`best_partition_by`]. The winner *at* a breakpoint belongs to the
/// face starting there (callers needing exact tie semantics at a
/// boundary re-evaluate the two adjacent faces; the planner does).
pub fn optimality_hull_affine_by(
    d: u32,
    price: impl Fn(f64, &Partition) -> f64 + Sync,
) -> Vec<AffineHullFace> {
    let candidates = partitions(d);
    let eval = |part: Partition| {
        let t0 = price(0.0, &part);
        let slope = price(1.0, &part) - t0;
        (part, t0, slope)
    };
    let lines: Vec<(Partition, f64, f64)> = if candidates.len() >= 1024 {
        candidates.into_par_iter().map(eval).collect()
    } else {
        candidates.into_iter().map(eval).collect()
    };
    // Candidate breakpoints: every pairwise crossing at m > 0. p(d)
    // grows slowly (p(20) = 627), so the quadratic pass is cheap next
    // to the 2·p(d) model evaluations above.
    let mut cuts: Vec<f64> = Vec::new();
    for i in 0..lines.len() {
        for j in (i + 1)..lines.len() {
            let (_, a0, a_s) = lines[i];
            let (_, b0, b_s) = lines[j];
            if a_s != b_s {
                let x = (b0 - a0) / (a_s - b_s);
                if x.is_finite() && x > 0.0 {
                    cuts.push(x);
                }
            }
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();
    let winner_at = |m: f64| -> usize {
        let mut best = 0usize;
        let mut best_t = lines[0].1 + lines[0].2 * m;
        for (i, (_, t0, s)) in lines.iter().enumerate().skip(1) {
            let t = t0 + s * m;
            if t < best_t {
                best = i;
                best_t = t;
            }
        }
        best
    };
    let mut faces: Vec<AffineHullFace> = Vec::new();
    let mut from = 0.0f64;
    for k in 0..=cuts.len() {
        // Probe strictly inside (from, to): no line crossing lives
        // there, so one winner rules the whole interval.
        let (probe, to) = if k < cuts.len() {
            (0.5 * (from + cuts[k]), cuts[k])
        } else if cuts.is_empty() {
            (1.0, f64::INFINITY)
        } else {
            (cuts[k - 1] + 1.0, f64::INFINITY)
        };
        let w = winner_at(probe);
        match faces.last_mut() {
            Some(f) if f.enum_index == w => f.to = to,
            _ => {
                let (part, t0, slope) = &lines[w];
                faces.push(AffineHullFace {
                    partition: part.clone(),
                    enum_index: w,
                    from,
                    to,
                    t0: *t0,
                    slope: *slope,
                });
            }
        }
        from = to;
    }
    faces
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hull_partitions(d: u32) -> Vec<String> {
        let p = MachineParams::ipsc860();
        optimality_hull(&p, d, 400.0, 1.0).iter().map(|f| f.partition.to_string()).collect()
    }

    #[test]
    fn figure_4_hull_d5() {
        // "When d = 5 (Figure 4) the combination {2,3} is optimal for
        // block sizes less than 100 bytes" then {5}.
        let faces = hull_partitions(5);
        assert_eq!(faces, vec!["{3,2}", "{5}"]);
        let p = MachineParams::ipsc860();
        let hull = optimality_hull(&p, 5, 400.0, 1.0);
        let breakpoint = hull[0].to;
        assert!(breakpoint > 60.0 && breakpoint < 140.0, "crossover near 100 B, got {breakpoint}");
    }

    #[test]
    fn figure_5_hull_d6() {
        // "For d = 6, three combinations are optimal: {2,2,2}, {3,3}
        // and {6}. The last of these is optimal for message sizes
        // beyond about 140 bytes. The first is optimal only for
        // extremely small sizes."
        let faces = hull_partitions(6);
        assert_eq!(faces, vec!["{2,2,2}", "{3,3}", "{6}"]);
        let p = MachineParams::ipsc860();
        let hull = optimality_hull(&p, 6, 400.0, 1.0);
        assert!(hull[0].to < 40.0, "{{2,2,2}} only for extremely small sizes");
        assert!(hull[1].to > 100.0 && hull[1].to < 200.0, "{{6}} beyond about 140 B");
    }

    #[test]
    fn figure_6_hull_d7() {
        // "we again have three optimal combinations {2,2,3}, {3,4} and
        // {7}, with {7} optimal beyond 160 bytes and {2,2,3} optimal
        // for 0 to 12 bytes."
        let faces = hull_partitions(7);
        assert_eq!(faces, vec!["{3,2,2}", "{4,3}", "{7}"]);
        let p = MachineParams::ipsc860();
        let hull = optimality_hull(&p, 7, 400.0, 1.0);
        assert!(hull[0].to < 30.0, "{{2,2,3}} for small sizes only, got {}", hull[0].to);
        assert!(
            hull[1].to > 120.0 && hull[1].to < 220.0,
            "{{7}} beyond ~160 B, got {}",
            hull[1].to
        );
    }

    #[test]
    fn standard_exchange_never_on_ipsc_hull() {
        // "The Standard Exchange Algorithm ... is never optimal on the
        // iPSC-860 for dimensions 5-7."
        for d in 5..=7u32 {
            assert!(
                !hull_partitions(d)
                    .iter()
                    .any(|s| s.chars().filter(|&c| c == '1').count() == d as usize),
                "d={d}"
            );
        }
    }

    #[test]
    fn best_partition_agrees_with_exhaustive_min() {
        let p = MachineParams::ipsc860();
        for m in [0.0, 10.0, 40.0, 100.0, 399.0] {
            let (part, t) = best_partition(&p, m, 6);
            for q in partitions(6) {
                assert!(multiphase_time(&p, m, 6, q.parts()) >= t - 1e-9, "m={m} {q} beats {part}");
            }
        }
    }

    #[test]
    fn faces_tile_the_range() {
        let p = MachineParams::ipsc860();
        let hull = optimality_hull(&p, 6, 300.0, 0.5);
        assert_eq!(hull[0].from, 0.0);
        for w in hull.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        assert_eq!(hull.last().unwrap().to, f64::INFINITY);
    }

    #[test]
    fn large_blocks_favor_singleton() {
        let p = MachineParams::ipsc860();
        for d in 2..=8u32 {
            let (part, _) = best_partition(&p, 10_000.0, d);
            assert!(part.is_optimal_circuit_switched(), "d={d}: {part}");
        }
    }

    #[test]
    fn affine_hull_matches_scanned_hull() {
        // Same face sequence as the step-resolution scan, with each
        // breakpoint inside the scan's ±step bracket of it.
        let p = MachineParams::ipsc860();
        for d in 5..=7u32 {
            let scanned = optimality_hull(&p, d, 400.0, 1.0);
            let affine =
                optimality_hull_affine_by(d, |m, part| multiphase_time(&p, m, d, part.parts()));
            assert_eq!(
                affine.iter().map(|f| &f.partition).collect::<Vec<_>>(),
                scanned.iter().map(|f| &f.partition).collect::<Vec<_>>(),
                "d={d}"
            );
            for (a, s) in affine.iter().zip(&scanned) {
                if s.to.is_finite() {
                    assert!(
                        (a.to - s.to).abs() <= 1.0,
                        "d={d}: exact {} vs scanned {}",
                        a.to,
                        s.to
                    );
                } else {
                    assert_eq!(a.to, f64::INFINITY);
                }
            }
            assert_eq!(affine[0].from, 0.0);
            for w in affine.windows(2) {
                assert_eq!(w[0].to, w[1].from);
            }
        }
    }

    #[test]
    fn affine_faces_carry_their_own_prediction() {
        let p = MachineParams::ipsc860();
        let d = 6u32;
        let affine =
            optimality_hull_affine_by(d, |m, part| multiphase_time(&p, m, d, part.parts()));
        for face in &affine {
            let probe =
                if face.to.is_finite() { 0.5 * (face.from + face.to) } else { face.from + 50.0 };
            let direct = multiphase_time(&p, probe, d, face.partition.parts());
            assert!(
                (face.time_at(probe) - direct).abs() < 1e-9 * direct.max(1.0),
                "affine {} vs direct {direct}",
                face.time_at(probe)
            );
            // And the face's partition really is the winner there.
            let (best, _) = best_partition(&p, probe, d);
            assert_eq!(best, face.partition);
        }
    }

    #[test]
    fn face_lookup_clamps_and_finds() {
        let p = MachineParams::ipsc860();
        let hull = optimality_hull(&p, 6, 300.0, 1.0);
        assert_eq!(face_index(&[], 10.0), None);
        assert_eq!(face_index(&hull, -5.0), Some(0));
        assert_eq!(face_index(&hull, 0.0), Some(0));
        assert_eq!(face_index(&hull, 1e12), Some(hull.len() - 1));
        for (i, f) in hull.iter().enumerate() {
            // `from` is inclusive; just under `to` still belongs here.
            assert_eq!(face_index(&hull, f.from), Some(i));
            let inside = if f.to.is_finite() { 0.5 * (f.from + f.to) } else { f.from + 1.0 };
            assert_eq!(face_at(&hull, inside).unwrap().partition, f.partition);
            if f.to.is_finite() {
                // A breakpoint belongs to the face starting there.
                assert_eq!(face_index(&hull, f.to), Some(i + 1));
            }
        }
        let affine =
            optimality_hull_affine_by(6, |m, part| multiphase_time(&p, m, 6, part.parts()));
        for (i, f) in affine.iter().enumerate() {
            let inside = if f.to.is_finite() { 0.5 * (f.from + f.to) } else { f.from + 1.0 };
            assert_eq!(affine_face_index(&affine, inside), Some(i));
        }
    }

    #[test]
    fn affine_hull_prices_conditioned_models_too() {
        // The planner builds conditioned hulls through the same entry
        // point: check the envelope against the conditioned scan on a
        // contended cube.
        use crate::conditioned::{
            conditioned_multiphase_time, conditioned_optimality_hull, ConditionSummary,
        };
        let p = MachineParams::ipsc860();
        let d = 6u32;
        let mut cond = ConditionSummary::noop(d);
        for _ in 0..6 {
            cond.add_stream(0x3F, 314.0, 600.0);
        }
        let scanned = conditioned_optimality_hull(&p, d, 400.0, 1.0, &cond);
        let affine = optimality_hull_affine_by(d, |m, part| {
            conditioned_multiphase_time(&p, m, d, part.parts(), &cond)
        });
        // The scan stops at 400 B; the exact envelope may keep
        // splitting beyond it. Compare the prefix the scan covers.
        for (s, a) in scanned.iter().zip(&affine) {
            assert_eq!(s.partition, a.partition);
            if s.to.is_finite() {
                assert!((s.to - a.to).abs() <= 1.0, "{} vs {}", s.to, a.to);
            }
        }
    }
}
