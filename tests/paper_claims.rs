//! Every quantitative claim in the paper, verified in one place.
//! This file is the machine-checkable companion to EXPERIMENTS.md.

use multiphase_exchange::exchange::api::CompleteExchange;
use multiphase_exchange::model::{
    crossover_block_size, multiphase_time, optimal_cs_time, optimality_hull,
    standard_exchange_time, MachineParams,
};
use multiphase_exchange::partitions::count;

/// Abstract/§4: "the Standard Exchange approach that employs d
/// transmissions of size 2^(d-1) blocks each" and "the Optimal Circuit
/// Switched algorithm that employs 2^d - 1 transmissions of 1 block
/// each" — transmission counts on the built programs.
#[test]
fn transmission_counts_match_abstract() {
    use multiphase_exchange::exchange::schedule::{bytes_per_node, transmissions_per_node};
    for d in 1..=10u32 {
        assert_eq!(transmissions_per_node(&vec![1u32; d as usize]), d as u64);
        assert_eq!(transmissions_per_node(&[d]), (1u64 << d) - 1);
    }
    // SE moves (d·2^(d-1))·m bytes per node; OCS the minimal (2^d-1)·m.
    for d in 1..=8u32 {
        let m = 10usize;
        assert_eq!(
            bytes_per_node(d, &vec![1u32; d as usize], m),
            d as u64 * (1u64 << (d - 1)) * m as u64
        );
        assert_eq!(bytes_per_node(d, &[d], m), ((1u64 << d) - 1) * m as u64);
    }
}

/// §4.3: hypothetical machine (τ=ρ=1, λ=200, δ=20, d=6) — "the
/// Standard Exchange algorithm is better for blocks of size less than
/// 30" and "for 24 bytes the Standard algorithm takes 15144 µsec".
#[test]
fn section_4_3_numbers() {
    let hypo = MachineParams::hypothetical();
    let crossover = crossover_block_size(&hypo, 6);
    assert!(crossover < 30.0 && crossover > 29.0);
    assert_eq!(standard_exchange_time(&hypo, 24.0, 6).round() as u64, 15144);
}

/// §5.1: the worked example's phase costs (with the phase-2 erratum
/// reproduced both ways) and the conclusion that the two-phase plan is
/// "substantially faster".
#[test]
fn section_5_1_worked_example() {
    let hypo = MachineParams::hypothetical();
    assert_eq!(optimal_cs_time(&hypo, 384.0, 2).round() as u64, 1832);
    assert_eq!(optimal_cs_time(&hypo, 160.0, 4).round() as u64, 6040); // as printed
    assert_eq!(optimal_cs_time(&hypo, 96.0, 4).round() as u64, 5080); // per the formula
    let two_phase = multiphase_time(&hypo, 24.0, 6, &[2, 4]);
    assert_eq!(two_phase.round() as u64, 9984);
    let standard = standard_exchange_time(&hypo, 24.0, 6);
    assert!(two_phase < standard && 10944.0 < standard);
}

/// §6: p(d) values — p(5)=7, p(7)=15, p(10)=42, p(15)=176, p(20)=627
/// (quoted across the abstract, introduction and Section 6).
#[test]
fn partition_function_values() {
    assert_eq!(count(5), 7);
    assert_eq!(count(7), 15);
    assert_eq!(count(10), 42);
    assert_eq!(count(15), 176);
    assert_eq!(count(20), 627);
    // "p(20) = 672" appears once in the introduction as a typo for
    // 627; the Section 6 table and mathematics give 627.
}

/// §8: "For dimensions 5, 6 and 7, the number of combinations are 7,
/// 11 and 15."
#[test]
fn combination_counts_for_measured_dimensions() {
    assert_eq!(count(5), 7);
    assert_eq!(count(6), 11);
    assert_eq!(count(7), 15);
}

/// §8 / Figure 4: d=5 hull is {2,3} then {5}, with {2,3} "optimal for
/// block sizes less than 100 bytes".
#[test]
fn figure_4_claims() {
    let params = MachineParams::ipsc860();
    let hull = optimality_hull(&params, 5, 400.0, 1.0);
    let names: Vec<String> = hull.iter().map(|f| f.partition.to_string()).collect();
    assert_eq!(names, vec!["{3,2}", "{5}"]);
    assert!((hull[0].to - 100.0).abs() < 40.0, "crossover near 100 B, got {}", hull[0].to);
}

/// §8 / Figure 5: d=6 hull {2,2,2}, {3,3}, {6}; {6} beyond ~140 B;
/// {2,2,2} "only for extremely small sizes".
#[test]
fn figure_5_claims() {
    let params = MachineParams::ipsc860();
    let hull = optimality_hull(&params, 6, 400.0, 1.0);
    let names: Vec<String> = hull.iter().map(|f| f.partition.to_string()).collect();
    assert_eq!(names, vec!["{2,2,2}", "{3,3}", "{6}"]);
    assert!(hull[0].to < 40.0);
    assert!((hull[1].to - 140.0).abs() < 60.0);
}

/// §8 / Figure 6: d=7 hull {2,2,3}, {3,4}, {7}; {7} beyond ~160 B;
/// {2,2,3} optimal 0-12 B; at 40 B the multiphase {3,4} beats both
/// classical algorithms by more than 2x (0.016 s vs 0.037 s).
#[test]
fn figure_6_claims_model_and_simulation() {
    let params = MachineParams::ipsc860();
    let hull = optimality_hull(&params, 7, 400.0, 1.0);
    let names: Vec<String> = hull.iter().map(|f| f.partition.to_string()).collect();
    assert_eq!(names, vec!["{3,2,2}", "{4,3}", "{7}"]);
    assert!(hull[0].to < 30.0, "{{2,2,3}} small-size face ends near 12 B, got {}", hull[0].to);
    assert!((hull[1].to - 160.0).abs() < 60.0);

    // Simulated (not just modeled) headline numbers.
    let ex = CompleteExchange::new(7);
    let se = ex.run_standard(40).unwrap();
    let ocs = ex.run_optimal(40).unwrap();
    let mp = ex.run(40, &[3, 4]).unwrap();
    assert!(se.verified && ocs.verified && mp.verified);
    assert!((se.simulated_us / 1e6 - 0.037).abs() < 0.005, "SE {}", se.simulated_us);
    assert!((ocs.simulated_us / 1e6 - 0.037).abs() < 0.005, "OCS {}", ocs.simulated_us);
    assert!((mp.simulated_us / 1e6 - 0.016).abs() < 0.002, "MP {}", mp.simulated_us);
    assert!(se.simulated_us / mp.simulated_us > 2.0);
    assert!(ocs.simulated_us / mp.simulated_us > 2.0);
}

/// §7.4: effective pairwise-exchange constants λ_eff = 177.5 and
/// δ_eff = 20.6 derived from λ=95, λ₀=82.5, δ=10.3.
#[test]
fn section_7_4_effective_constants() {
    let p = MachineParams::ipsc860();
    assert!((p.lambda_eff() - 177.5).abs() < 1e-12);
    assert!((p.delta_eff() - 20.6).abs() < 1e-12);
    assert!((p.barrier_time(6) - 900.0).abs() < 1e-12);
}

/// Beyond the paper — the conditioned-crossover claim pinned by the
/// robustness study (E15, `repro robustness 6`): under a growing
/// hotspot ladder at d = 6 the simulated `{6}` takeover moves from
/// 160 B out to 280-360 B, while near-proportional slowdowns leave it
/// at 160 B. The netcond-aware analytic model
/// (`mce_model::conditioned`) must predict that shift — same
/// direction, within two 40-byte ladder steps of the recorded values —
/// from the condition summary alone, with no simulation in the loop.
#[test]
fn conditioned_crossover_matches_robustness_study() {
    use multiphase_exchange::model::conditioned_multiphase_time;
    use multiphase_exchange::partitions::Partition;
    use multiphase_exchange::simnet::conformance::{
        condition_summary, hotspot_condition, singleton_takeover,
    };
    use multiphase_exchange::simnet::{NetCondition, SimConfig};

    let params = MachineParams::ipsc860();
    let d = 6u32;
    // The study's cast and ladder: hull partitions + Standard
    // Exchange, 40..400 B in 40-byte steps.
    let parts: Vec<Partition> =
        [vec![2, 2, 2], vec![3, 3], vec![6], vec![1; 6]].into_iter().map(Partition::new).collect();
    let sizes: Vec<usize> = (1..=10).map(|k| k * 40).collect();
    let takeover = |nc: NetCondition| -> Option<usize> {
        let cond = condition_summary(&SimConfig::ipsc860(d).with_netcond(nc));
        let winners: Vec<(usize, String)> = sizes
            .iter()
            .map(|&m| {
                let best = parts
                    .iter()
                    .min_by(|a, b| {
                        conditioned_multiphase_time(&params, m as f64, d, a.parts(), &cond)
                            .total_cmp(&conditioned_multiphase_time(
                                &params,
                                m as f64,
                                d,
                                b.parts(),
                                &cond,
                            ))
                    })
                    .unwrap();
                (m, best.to_string())
            })
            .collect();
        singleton_takeover("{6}", winners.iter().map(|(m, w)| (*m, w.as_str())))
    };

    // Baseline: the clean crossover at 160 B, exactly as simulated.
    assert_eq!(takeover(NetCondition::default()), Some(160));
    // Near-proportional slowdowns leave the crossover in place.
    assert_eq!(takeover(NetCondition::uniform_slowdown(3.0)), Some(160));

    // The hotspot ladder: recorded simulated takeovers 280 / 280 / 360
    // (robustness study at d = 6, jitter-averaged). The model must
    // move the crossover the same way and land within ±2 ladder steps.
    let recorded = [(2u32, 280usize), (6, 280), (12, 360)];
    let mut last = 160;
    for (level, sim_takeover) in recorded {
        let predicted = takeover(hotspot_condition(d, level))
            .expect("hotspot must not push {6} out of the ladder entirely");
        assert!(predicted > 160, "hotspot_{level}: crossover must move out, got {predicted}");
        assert!(predicted >= last, "hotspot_{level}: shift must grow with traffic");
        let steps_off = (predicted as i64 - sim_takeover as i64).abs() / 40;
        assert!(
            steps_off <= 2,
            "hotspot_{level}: predicted {predicted} B vs simulated {sim_takeover} B \
             ({steps_off} ladder steps apart)"
        );
        last = predicted;
    }
}

/// §8: "In all cases there is good agreement between the predicted and
/// observed run times" — simulated vs model within 1% without jitter
/// over every hull partition and dimension.
#[test]
fn predicted_vs_simulated_agreement() {
    for d in 5..=7u32 {
        let params = MachineParams::ipsc860();
        let ex = CompleteExchange::new(d);
        for face in optimality_hull(&params, d, 200.0, 1.0) {
            let m = 64usize;
            let out = ex.run(m, face.partition.parts()).unwrap();
            assert!(out.verified);
            assert!(out.model_error() < 0.01, "d={d} {}: {}", face.partition, out.model_error());
        }
    }
}
