//! Cross-crate application pipeline tests: the paper's motivating
//! workloads running end-to-end on the exchange fabrics.

use multiphase_exchange::apps::adi::{adi_step_dense, AdiSolver};
use multiphase_exchange::apps::fft::{Complex, Direction};
use multiphase_exchange::apps::fft2d::{fft2d_distributed, ComplexBands};
use multiphase_exchange::apps::lookup::DistributedTable;
use multiphase_exchange::apps::transpose::{
    transpose_dense, transpose_distributed, BandMatrix, Transport,
};
use multiphase_exchange::partitions::partitions;

/// Transpose must be exact for every partition of the cube dimension,
/// on both transports.
#[test]
fn transpose_correct_for_every_partition() {
    let d = 3u32;
    let r = 2usize;
    let n = (1usize << d) * r;
    let dense: Vec<f64> = (0..n * n).map(|k| (k as f64).sqrt() * 3.25).collect();
    let mat = BandMatrix::from_dense(d, r, &dense);
    let expect = transpose_dense(n, &dense);
    for part in partitions(d) {
        let t = transpose_distributed(&mat, Some(part.parts()), Transport::Reference);
        assert_eq!(t.to_dense(), expect, "partition {part}");
    }
    let t = transpose_distributed(&mat, None, Transport::Threads);
    assert_eq!(t.to_dense(), expect);
}

/// A matrix-shaped workload exercising transpose composition:
/// (A^T)^T = A under different partitions for each leg.
#[test]
fn double_transpose_mixed_partitions() {
    let d = 4u32;
    let r = 2usize;
    let n = (1usize << d) * r;
    let dense: Vec<f64> = (0..n * n).map(|k| ((k * 37) % 101) as f64).collect();
    let mat = BandMatrix::from_dense(d, r, &dense);
    let once = transpose_distributed(&mat, Some(&[2, 2]), Transport::Reference);
    let twice = transpose_distributed(&once, Some(&[1, 3]), Transport::Reference);
    assert_eq!(twice.to_dense(), dense);
}

/// 2-D FFT of a separable signal has the analytically known spectrum.
#[test]
fn fft2d_separable_signal_spectrum() {
    let d = 2u32;
    let r = 4usize;
    let n = (1usize << d) * r; // 16
    let dense: Vec<Complex> = (0..n * n)
        .map(|k| {
            let j = k % n;
            Complex::new((2.0 * std::f64::consts::PI * 2.0 * j as f64 / n as f64).cos(), 0.0)
        })
        .collect();
    let bands = ComplexBands::from_dense(d, r, &dense);
    let freq = fft2d_distributed(&bands, Direction::Forward, None, Transport::Reference);
    let spec = freq.to_dense();
    // cos(2π·2x/N): peaks at (0, 2) and (0, N-2), magnitude N²/2.
    let expect_mag = (n * n) as f64 / 2.0;
    for i in 0..n {
        for j in 0..n {
            let mag = spec[i * n + j].abs();
            if i == 0 && (j == 2 || j == n - 2) {
                assert!((mag - expect_mag).abs() < 1e-6, "peak ({i},{j}): {mag}");
            } else {
                assert!(mag < 1e-6, "leak at ({i},{j}): {mag}");
            }
        }
    }
}

/// ADI solved distributed vs dense for several partitions; physical
/// sanity (decay) over a longer horizon.
#[test]
fn adi_long_horizon_tracks_reference() {
    let d = 2u32;
    let r = 4usize;
    let n = (1usize << d) * r;
    let mut dense = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            dense[i * n + j] = if (i + j) % 3 == 0 { 1.0 } else { -0.5 };
        }
    }
    let mut solver =
        AdiSolver::new(BandMatrix::from_dense(d, r, &dense), 0.2).with_dims(vec![1, 1]);
    let mut reference = dense;
    for _ in 0..20 {
        solver.step();
        reference = adi_step_dense(n, &reference, 0.2);
    }
    let got = solver.grid.to_dense();
    for (a, b) in got.iter().zip(&reference) {
        assert!((a - b).abs() < 1e-8);
    }
    assert!(solver.max_norm() < 0.5, "diffusion must damp the field");
}

/// Table lookup at cube scale with querying skew (some nodes ask a
/// lot, some nothing).
#[test]
fn lookup_with_skewed_batches() {
    let d = 4u32;
    let nodes = 1usize << d;
    let entries: Vec<(u64, u64)> = (0..500u64).map(|k| (k, k.wrapping_mul(31) + 7)).collect();
    let table = DistributedTable::new(d, &entries);
    let queries: Vec<Vec<u64>> = (0..nodes)
        .map(|x| {
            if x % 3 == 0 {
                (0..40u64).map(|i| (x as u64 * 13 + i * 7) % 600).collect()
            } else if x % 3 == 1 {
                vec![x as u64]
            } else {
                Vec::new()
            }
        })
        .collect();
    let answers = table.batch_lookup(&queries, 40, None, Transport::Reference);
    for (x, qs) in queries.iter().enumerate() {
        assert_eq!(answers[x].len(), qs.len());
        for (i, &k) in qs.iter().enumerate() {
            let expect = if k < 500 { Some(k.wrapping_mul(31) + 7) } else { None };
            assert_eq!(answers[x][i], expect, "node {x} key {k}");
        }
    }
}
