//! End-to-end integration: paper claims verified across the whole
//! stack (model + simulator + algorithms + apps).

use multiphase_exchange::exchange::api::CompleteExchange;
use multiphase_exchange::exchange::planner::Planner;
use multiphase_exchange::model::{multiphase_time, MachineParams};
use multiphase_exchange::partitions::{count, partitions};

/// Abstract claim: the multiphase algorithm "can substantially improve
/// performance for block sizes in the 0-160 byte range".
#[test]
fn multiphase_wins_in_the_paper_byte_range() {
    let ex = CompleteExchange::new(7);
    for m in [8usize, 24, 40, 80, 120, 160] {
        let planned = ex.run_planned(m).unwrap();
        let se = ex.run_standard(m).unwrap();
        let ocs = ex.run_optimal(m).unwrap();
        assert!(planned.verified && se.verified && ocs.verified, "m={m}");
        let best_classic = se.simulated_us.min(ocs.simulated_us);
        assert!(
            planned.simulated_us <= best_classic,
            "m={m}: planned {} vs classic {best_classic}",
            planned.simulated_us
        );
        // "Substantially" in the middle of the range (the advantage
        // tapers toward 160 B where {d} takes over, as in Figure 6).
        if (24..=80).contains(&m) {
            assert!(
                best_classic / planned.simulated_us > 1.25,
                "m={m}: speedup only {:.2}",
                best_classic / planned.simulated_us
            );
        }
    }
}

/// Beyond the multiphase range, the singleton plan (OCS) must win and
/// the planner must say so.
#[test]
fn large_blocks_choose_ocs_and_match() {
    let ex = CompleteExchange::new(6);
    let plan = ex.plan(4000);
    assert_eq!(plan.dims, vec![6]);
    let planned = ex.run_planned(4000).unwrap();
    let ocs = ex.run_optimal(4000).unwrap();
    assert!((planned.simulated_us - ocs.simulated_us).abs() < 1e-6);
}

/// The planner's precomputed hull and the exhaustive search agree
/// everywhere, and the planner covers the paper's dimensions.
#[test]
fn planner_consistency_d5_to_d7() {
    for d in 5..=7u32 {
        let params = MachineParams::ipsc860();
        let planner = Planner::new(params.clone(), d, 400);
        for m in (0..=400usize).step_by(7) {
            let via_planner = planner.plan(m);
            let t_best = partitions(d)
                .into_iter()
                .map(|p| multiphase_time(&params, m as f64, d, p.parts()))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (via_planner.predicted_us - t_best).abs() < 1e-9,
                "d={d} m={m}: planner {} exhaustive {t_best}",
                via_planner.predicted_us
            );
        }
    }
}

/// Enumeration scale claim: "for a million node hypercube, the
/// enumeration of 627 partitions is quite viable".
#[test]
fn million_node_cube_enumeration_is_trivial() {
    assert_eq!(count(20), 627);
    let started = std::time::Instant::now();
    let all = partitions(20);
    assert_eq!(all.len(), 627);
    assert!(started.elapsed().as_millis() < 1000, "enumeration must be trivial");
}

/// Run the complete exchange on machines with different parameters:
/// the algorithm is correct regardless, only the plan changes.
#[test]
fn other_machine_presets() {
    for params in [MachineParams::hypothetical(), MachineParams::ncube2_like()] {
        let ex = CompleteExchange::new(5).with_params(params.clone());
        let out = ex.run_planned(24).unwrap();
        assert!(out.verified, "{} failed verification", params.name);
        assert!(out.model_error() < 0.02, "{}: {}", params.name, out.model_error());
    }
}

/// The simulator's timing is bit-deterministic run to run.
#[test]
fn deterministic_replay() {
    let ex = CompleteExchange::new(5);
    let a = ex.run(24, &[2, 3]).unwrap();
    let b = ex.run(24, &[2, 3]).unwrap();
    assert_eq!(a.simulated_us, b.simulated_us);
    assert_eq!(a.stats, b.stats);
}
