//! Planner persistence ("the optimal combination stored for repeated
//! future use", §6) and large-scale thread-fabric stress.

use multiphase_exchange::exchange::planner::Planner;
use multiphase_exchange::exchange::thread_fabric::thread_complete_exchange;
use multiphase_exchange::exchange::verify::{stamped_memories, verify_complete_exchange};
use multiphase_exchange::model::MachineParams;

/// The planner serializes to JSON and answers identically after a
/// round trip — the paper's "done only once and stored" usage.
#[test]
fn planner_roundtrips_through_json() {
    let planner = Planner::new(MachineParams::ipsc860(), 7, 400);
    let json = serde_json::to_string(&planner).expect("serialize");
    let back: Planner = serde_json::from_str(&json).expect("deserialize");
    for m in (0..=400usize).step_by(13) {
        assert_eq!(planner.lookup(m), back.lookup(m), "m={m}");
        let a = planner.plan(m);
        let b = back.plan(m);
        assert_eq!(a.dims, b.dims);
        assert!((a.predicted_us - b.predicted_us).abs() < 1e-12);
    }
    // The stored table is small: a handful of hull faces.
    assert!(planner.faces().len() <= 6);
}

/// 64 real OS threads exchanging simultaneously: the crossbeam fabric
/// must neither deadlock nor corrupt data at the paper's d=6 scale.
#[test]
fn thread_fabric_sixty_four_nodes() {
    let d = 6u32;
    let m = 32usize;
    for dims in [vec![3u32, 3], vec![6], vec![2, 2, 2]] {
        let out = thread_complete_exchange(d, &dims, stamped_memories(d, m), m);
        assert!(verify_complete_exchange(d, m, &out).is_empty(), "dims {dims:?} corrupted data");
    }
}

/// Repeated exchanges compose: running the complete exchange twice
/// returns every block to its origin (the exchange is an involution on
/// the (src, dst) labelling).
#[test]
fn double_exchange_is_involution() {
    use multiphase_exchange::exchange::fabric::lockstep;
    let d = 4u32;
    let m = 8usize;
    let initial = stamped_memories(d, m);
    let once = lockstep::run(d, &[2, 2], initial.clone(), m);
    let twice = lockstep::run(d, &[1, 3], once, m);
    assert_eq!(twice, initial);
}
