//! # multiphase-exchange
//!
//! Umbrella crate for the reproduction of Bokhari, *Multiphase
//! Complete Exchange on a Circuit Switched Hypercube* (ICPP 1991).
//! Re-exports the workspace crates under one roof:
//!
//! * [`hypercube`] — topology, e-cube routing, subcubes, contention;
//! * [`simnet`] — discrete-event circuit-switched machine simulator;
//! * [`partitions`] — integer partitions of the cube dimension;
//! * [`model`] — the paper's analytic cost model (Eqs. 1–3, hulls);
//! * [`exchange`] — the multiphase algorithm, schedules, planner, fabrics;
//! * [`plan`] — planner-as-a-service: cached-hull best-partition queries;
//! * [`apps`] — transpose, 2-D FFT, ADI, distributed table lookup.
//!
//! See `examples/` for runnable entry points and `crates/bench` for
//! the harness that regenerates every table and figure of the paper.

pub use mce_apps as apps;
pub use mce_core as exchange;
pub use mce_hypercube as hypercube;
pub use mce_model as model;
pub use mce_partitions as partitions;
pub use mce_plan as plan;
pub use mce_simnet as simnet;
